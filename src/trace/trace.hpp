// Memory traces: the substrate of the paper's analytical model.
//
// Section 3 of the paper assumes "knowledge of the full memory trace of the
// application as well as the address-to-core data placement".  A TraceSet
// holds one ThreadTrace per thread; each access record carries the operation
// kind, byte address, and the number of non-memory instructions executed
// since the previous access (used by the execution-driven simulator for
// timing, and by cost accounting for instructions executed at remote cores).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace em2 {

/// One memory access in a thread's dynamic instruction stream.
struct Access {
  Addr addr = 0;
  MemOp op = MemOp::kRead;
  /// Non-memory instructions executed after the previous access and before
  /// this one (the paper's "possibly other non-memory instructions").
  std::uint32_t gap = 0;

  friend bool operator==(const Access&, const Access&) = default;
};

/// The dynamic memory-access sequence of a single thread.
class ThreadTrace {
 public:
  ThreadTrace() = default;
  ThreadTrace(ThreadId thread, CoreId native_core)
      : thread_(thread), native_core_(native_core) {}

  ThreadId thread() const noexcept { return thread_; }

  /// The core this thread originated on: where its native hardware context
  /// and (for stack-EM2) its stack memory live.
  CoreId native_core() const noexcept { return native_core_; }

  void append(Access a) { accesses_.push_back(a); }
  void append(Addr addr, MemOp op, std::uint32_t gap = 0) {
    accesses_.push_back(Access{addr, op, gap});
  }

  std::size_t size() const noexcept { return accesses_.size(); }
  bool empty() const noexcept { return accesses_.empty(); }
  const Access& operator[](std::size_t i) const noexcept {
    return accesses_[i];
  }
  std::span<const Access> accesses() const noexcept { return accesses_; }

  void reserve(std::size_t n) { accesses_.reserve(n); }

 private:
  ThreadId thread_ = kNoThread;
  CoreId native_core_ = kNoCore;
  std::vector<Access> accesses_;
};

/// A whole-application trace: one ThreadTrace per thread, plus the block
/// (cache-line) size that placement operates on.
class TraceSet {
 public:
  explicit TraceSet(std::uint32_t block_bytes = 64);

  /// Adds a thread trace; thread ids must be dense and added in order.
  void add_thread(ThreadTrace trace);

  std::size_t num_threads() const noexcept { return threads_.size(); }
  const ThreadTrace& thread(std::size_t i) const noexcept {
    return threads_[i];
  }
  std::span<const ThreadTrace> threads() const noexcept { return threads_; }

  /// Cache-line size used to map byte addresses to placement blocks.
  /// Must be a power of two.
  std::uint32_t block_bytes() const noexcept { return block_bytes_; }

  /// Maps a byte address to its placement block (line) index.
  Addr block_of(Addr addr) const noexcept {
    return addr >> block_shift_;
  }

  /// Total access count across all threads.
  std::uint64_t total_accesses() const noexcept;

  /// All distinct blocks touched, sorted ascending.
  std::vector<Addr> touched_blocks() const;

 private:
  std::uint32_t block_bytes_;
  std::uint32_t block_shift_;
  std::vector<ThreadTrace> threads_;
};

}  // namespace em2
