// TraceWriter: append-only EM2S writer with bounded buffering.
//
// Accesses arrive in any thread interleaving; each thread's stream is
// delta/varint-encoded into a per-thread buffer that flushes to the file
// as a self-contained chunk whenever it reaches the chunk target — so
// writer memory is O(threads * chunk_bytes) no matter how long the trace
// is.  close() (or the destructor) flushes the tails and writes the
// chunk-index footer + CRC trailer that make the file seekable and
// verifiable.
#pragma once

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "trace/stream/format.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace em2 {

class TraceWriter {
 public:
  struct Options {
    /// Flush a thread's chunk once its raw encoding reaches this size.
    std::uint32_t chunk_bytes = 64 * 1024;
    /// Optional per-chunk compression; nullptr stores payloads verbatim
    /// (codec id 0).  The pointee must outlive the writer.
    const em2s::ChunkCodec* codec = nullptr;
  };

  /// Opens `path` for writing and commits the header.  `natives[t]` is
  /// thread t's native core; the thread count is natives.size().
  TraceWriter(const std::string& path, std::uint32_t block_bytes,
              std::span<const CoreId> natives, const Options& opts);
  TraceWriter(const std::string& path, std::uint32_t block_bytes,
              std::span<const CoreId> natives)
      : TraceWriter(path, block_bytes, natives, Options{}) {}
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one access to `thread`'s stream (program order per thread).
  void append(std::size_t thread, const Access& a);

  /// Flushes tails, writes footer + trailer, and closes the file.
  /// Returns false if any write failed.  Idempotent; the destructor
  /// calls it if the caller did not.
  bool close();

  bool ok() const noexcept { return ok_; }

 private:
  struct PerThread {
    CoreId native = kNoCore;
    Addr prev_addr = 0;
    std::uint32_t buffered_records = 0;
    std::uint64_t total_records = 0;
    std::vector<std::uint8_t> raw;  // encoded, pre-codec
    std::vector<em2s::ChunkMeta> chunks;
  };

  void flush_chunk(std::size_t thread);

  std::ofstream out_;
  Options opts_;
  std::vector<PerThread> threads_;
  std::uint64_t file_offset_ = 0;
  bool ok_ = true;
  bool closed_ = false;
};

}  // namespace em2
