// TraceSource: the pull-based access-stream abstraction the trace-mode
// engines run against.
//
// The paper's model "assumes knowledge of the full memory trace"; the
// engines do not — they only ever consume each thread's accesses in
// program order, one per round-robin turn.  TraceSource captures exactly
// that contract: per-thread metadata plus a forward cursor, implemented
// by an in-memory TraceSet (MemoryTraceSource, zero-copy) or by an
// on-disk EM2S file (TraceStream in reader.hpp, bounded-memory batches).
// One engine loop serves both, so streamed and in-memory runs are the
// same code path and their reports are byte-identical by construction.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>

#include "trace/trace.hpp"
#include "util/types.hpp"

namespace em2 {

/// Forward iterator over one thread's accesses.  next() is non-virtual
/// and inlines to a pointer bump in the common case; implementations only
/// pay an indirect call per exhausted batch (refill), so the in-memory
/// path costs the same as indexing the ThreadTrace vector directly.
class AccessCursor {
 public:
  virtual ~AccessCursor() = default;
  AccessCursor(const AccessCursor&) = delete;
  AccessCursor& operator=(const AccessCursor&) = delete;

  /// The next access in program order, or nullptr at end of stream.  The
  /// pointee stays valid until the next next() call on this cursor.
  EM2_ALWAYS_INLINE const Access* next() {
    if (cur_ != end_) {
      return cur_++;
    }
    return advance();
  }

 protected:
  AccessCursor() = default;

  /// Loads the next non-empty batch into [cur_, end_); leaves them equal
  /// at end of stream.  May throw (e.g. TraceFormatError on a corrupt
  /// chunk).
  virtual void refill() = 0;

  const Access* cur_ = nullptr;
  const Access* end_ = nullptr;

 private:
  EM2_NOINLINE const Access* advance() {
    if (done_) {
      return nullptr;
    }
    refill();
    if (cur_ == end_) {
      done_ = true;
      return nullptr;
    }
    return cur_++;
  }

  bool done_ = false;
};

/// An application trace the engines can run: per-thread natives and
/// cursors plus the block geometry placement operates on.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  std::size_t num_threads() const noexcept { return num_threads_; }
  std::uint32_t block_bytes() const noexcept { return block_bytes_; }

  /// Maps a byte address to its placement block, matching
  /// TraceSet::block_of.
  Addr block_of(Addr addr) const noexcept { return addr >> block_shift_; }

  virtual CoreId native_core(std::size_t thread) const = 0;
  virtual std::uint64_t total_accesses() const = 0;

  /// A fresh cursor at the start of `thread`'s stream.  Cursors are
  /// independent: a source must support any number of them, concurrently
  /// (each engine run opens its own set).
  virtual std::unique_ptr<AccessCursor> make_cursor(
      std::size_t thread) const = 0;

  /// The backing TraceSet when this source is an in-memory view, else
  /// nullptr.  Exec and optimal modes need the whole trace (program
  /// compilation / DP over full sequences); a streamed source without a
  /// backing set is materialized for them instead.
  virtual const TraceSet* backing_traces() const { return nullptr; }

  /// Applies a total resident-memory budget in bytes for this source's
  /// read-side buffers (0 = unlimited).  In-memory sources ignore it;
  /// TraceStream divides it across per-thread cursors and throws
  /// std::invalid_argument below min_stream_window().  Const because the
  /// budget is a read-side tuning knob, not trace content — RunSpec
  /// carries it per run.
  virtual void set_stream_window(std::uint64_t bytes) const {
    (void)bytes;
  }
  /// Smallest accepted non-zero stream window (0 for in-memory sources).
  virtual std::uint64_t min_stream_window() const { return 0; }

  /// Reader-buffer accounting: bytes currently resident / high-water
  /// mark.  The bounded-memory acceptance tests assert peak <= window
  /// against these numbers.  Always 0 for in-memory sources (the trace
  /// itself is the caller's allocation, not the reader's).
  virtual std::uint64_t resident_trace_bytes() const { return 0; }
  virtual std::uint64_t peak_resident_trace_bytes() const { return 0; }

 protected:
  TraceSource() = default;
  TraceSource(std::size_t num_threads, std::uint32_t block_bytes) {
    init_geometry(num_threads, block_bytes);
  }

  /// For implementations that learn the geometry after construction
  /// (e.g. by parsing a file header).
  void init_geometry(std::size_t num_threads, std::uint32_t block_bytes) {
    num_threads_ = num_threads;
    block_bytes_ = block_bytes;
    block_shift_ =
        static_cast<std::uint32_t>(std::countr_zero(block_bytes));
  }

 private:
  std::size_t num_threads_ = 0;
  std::uint32_t block_bytes_ = 64;
  std::uint32_t block_shift_ = 6;
};

/// Zero-copy TraceSource view over a TraceSet the caller keeps alive.
class MemoryTraceSource final : public TraceSource {
 public:
  explicit MemoryTraceSource(const TraceSet& traces)
      : TraceSource(traces.num_threads(), traces.block_bytes()),
        traces_(traces) {}

  CoreId native_core(std::size_t thread) const override {
    return traces_.thread(thread).native_core();
  }
  std::uint64_t total_accesses() const override {
    return traces_.total_accesses();
  }
  std::unique_ptr<AccessCursor> make_cursor(
      std::size_t thread) const override;
  const TraceSet* backing_traces() const override { return &traces_; }

 private:
  const TraceSet& traces_;
};

}  // namespace em2
