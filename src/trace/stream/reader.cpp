#include "trace/stream/reader.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>

#include "trace/stream/codec.hpp"
#include "trace/trace_io.hpp"
#include "util/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define EM2_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace em2 {
namespace {

[[noreturn]] void fail(const std::string& why) {
  throw TraceFormatError("trace stream load failed: " + why);
}

/// Bounds-checked cursor over the in-memory footer bytes.
class FooterParser {
 public:
  explicit FooterParser(std::span<const std::uint8_t> bytes)
      : bytes_(bytes) {}

  template <typename T>
  T take(const char* what) {
    if (bytes_.size() - pos_ < sizeof(T)) {
      fail(std::string("truncated footer (while reading ") + what + ")");
    }
    T value;
    std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

void check_block_bytes(std::uint64_t block_bytes) {
  if (block_bytes == 0 || block_bytes > (std::uint64_t{1} << 31) ||
      !std::has_single_bit(block_bytes)) {
    fail("block size must be a power of two in [1, 2^31], got " +
         std::to_string(block_bytes));
  }
}

}  // namespace

/// Per-thread EM2S cursor: walks the thread's chunk list, authenticating
/// each chunk header against the footer index and each payload against
/// its CRC, and decodes records batch-by-batch into a budget-sized
/// buffer.  One decode path serves both byte backends (mmap pointer or
/// staged ifstream reads).
class ThreadCursor final : public AccessCursor {
 public:
  ThreadCursor(const TraceStream& stream, std::size_t thread)
      : stream_(stream),
        meta_(stream.threads_[thread]),
        thread_(thread) {
    const std::uint64_t window =
        stream.window_.load(std::memory_order_relaxed);
    const std::uint64_t budget =
        window == 0 ? TraceStream::kDefaultCursorBytes
                    : window / stream.num_threads();
    const std::size_t batch_cap = static_cast<std::size_t>(
        std::max<std::uint64_t>(16, budget / 2 / sizeof(Access)));
    batch_.resize(batch_cap);
    base_charge_ = batch_cap * sizeof(Access);
    if (stream_.map_ == nullptr) {
      in_.open(stream_.path_, std::ios::binary);
      if (!in_) {
        fail("cannot reopen " + stream_.path_);
      }
      staging_.resize(static_cast<std::size_t>(
          std::max<std::uint64_t>(64, budget / 4)));
      base_charge_ += staging_.size();
    }
    stream_.charge(base_charge_);
  }

  ~ThreadCursor() override {
    stream_.release(base_charge_ + chunk_charge_);
  }

 protected:
  void refill() override {
    std::size_t n = 0;
    while (n < batch_.size()) {
      if (!in_chunk_) {
        if (chunk_idx_ == meta_.chunks.size()) {
          break;
        }
        open_chunk();
      }
      const em2s::ChunkMeta& c = meta_.chunks[chunk_idx_];
      if (direct_ != nullptr) {
        n = decode_direct(c.records, n);
      } else {
        while (n < batch_.size() && records_done_ < c.records) {
          batch_[n++] = decode_record();
        }
      }
      if (records_done_ == c.records) {
        close_chunk();
      }
    }
    cur_ = batch_.data();
    end_ = batch_.data() + n;
  }

 private:
  /// Hot path for the direct backends (mmap or a decompressed chunk):
  /// decodes a batch straight off the payload pointer with all cursor
  /// state in locals, so the per-record cost is two varint loops and one
  /// store — the generic per-byte path below only serves the staged
  /// ifstream fallback.  Bounds still hold: every byte read is checked
  /// against the chunk end, with the (cold, outlined) failure helpers
  /// building the diagnostic.
  std::size_t decode_direct(std::uint32_t chunk_records, std::size_t n) {
    const std::uint8_t* p = direct_;
    const std::uint8_t* const end = p + (raw_bytes_ - consumed_);
    Addr prev = prev_addr_;
    std::uint32_t done = records_done_;
    Access* const out = batch_.data();
    const std::size_t cap = batch_.size();
    while (n < cap && done < chunk_records) {
      std::uint64_t delta = 0;
      std::uint64_t packed = 0;
      unsigned shift = 0;
      while (true) {
        if (p == end) {
          fail_record_overruns_payload(done);
        }
        const std::uint8_t b = *p++;
        delta |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
        if ((b & 0x80u) == 0) {
          break;
        }
        shift += 7;
        if (shift > 63) {
          fail_varint_too_long(done);
        }
      }
      shift = 0;
      while (true) {
        if (p == end) {
          fail_record_overruns_payload(done);
        }
        const std::uint8_t b = *p++;
        packed |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
        if ((b & 0x80u) == 0) {
          break;
        }
        shift += 7;
        if (shift > 63) {
          fail_varint_too_long(done);
        }
      }
      if ((packed >> 1) > 0xFFFFFFFFull) {
        fail_gap_out_of_range(packed >> 1, done);
      }
      prev += em2s::zigzag_decode(delta);
      out[n].addr = prev;
      out[n].op = static_cast<MemOp>(packed & 1);
      out[n].gap = static_cast<std::uint32_t>(packed >> 1);
      ++n;
      ++done;
    }
    consumed_ += static_cast<std::uint64_t>(p - direct_);
    direct_ = p;
    prev_addr_ = prev;
    records_done_ = done;
    return n;
  }

  [[noreturn]] EM2_NOINLINE void fail_record_overruns_payload(
      std::uint32_t record) const {
    fail("corrupt varint: record runs past the chunk payload (thread " +
         std::to_string(thread_) + ", chunk " + std::to_string(chunk_idx_) +
         ", record " + std::to_string(record) + ")");
  }

  [[noreturn]] EM2_NOINLINE void fail_varint_too_long(
      std::uint32_t record) const {
    fail("corrupt varint: longer than 10 bytes (thread " +
         std::to_string(thread_) + ", chunk " + std::to_string(chunk_idx_) +
         ", record " + std::to_string(record) + ")");
  }

  [[noreturn]] EM2_NOINLINE void fail_gap_out_of_range(
      std::uint64_t gap, std::uint32_t record) const {
    fail("gap " + std::to_string(gap) + " out of range (thread " +
         std::to_string(thread_) + ", chunk " + std::to_string(chunk_idx_) +
         ", record " + std::to_string(record) + ")");
  }

  void open_chunk() {
    const em2s::ChunkMeta& c = meta_.chunks[chunk_idx_];
    // Authenticate the on-disk chunk header against the CRC-protected
    // footer index: a reader never acts on an unauthenticated header.
    std::array<std::uint8_t, em2s::kChunkHeaderBytes> header;
    read_at(c.offset, header.data(), header.size());
    std::uint32_t thread32 = 0;
    std::uint32_t records = 0;
    std::uint32_t payload_bytes = 0;
    std::uint32_t raw_bytes = 0;
    std::uint8_t codec = 0;
    std::uint32_t crc = 0;
    std::memcpy(&thread32, header.data(), 4);
    std::memcpy(&records, header.data() + 4, 4);
    std::memcpy(&payload_bytes, header.data() + 8, 4);
    std::memcpy(&raw_bytes, header.data() + 12, 4);
    std::memcpy(&codec, header.data() + 16, 1);
    std::memcpy(&crc, header.data() + 17, 4);
    const auto where = [&] {
      return " (thread " + std::to_string(thread_) + ", chunk " +
             std::to_string(chunk_idx_) + ")";
    };
    if (thread32 != thread_) {
      fail("chunk header contradicts the footer index: thread " +
           std::to_string(thread32) + where());
    }
    if (records != c.records) {
      fail("chunk header contradicts the footer index: record count " +
           std::to_string(records) + " vs " + std::to_string(c.records) +
           where());
    }
    if (payload_bytes != c.payload_bytes || raw_bytes != c.raw_bytes ||
        codec != c.codec || crc != c.payload_crc) {
      fail("chunk header contradicts the footer index" + where());
    }
    const std::uint64_t payload_off = c.offset + em2s::kChunkHeaderBytes;
    raw_bytes_ = c.raw_bytes;
    consumed_ = 0;
    records_done_ = 0;
    prev_addr_ = 0;
    if (c.codec != 0) {
      // Compressed chunk: stage the stored payload whole, verify, then
      // decode from the decompressed buffer (the codec hook trades the
      // strict per-record budget for smaller files).
      const em2s::ChunkCodec* codec_impl = stream_.codec_for(c.codec);
      std::vector<std::uint8_t> stored(c.payload_bytes);
      read_at(payload_off, stored.data(), stored.size());
      if (em2s::crc32(stored) != c.payload_crc) {
        fail("chunk payload CRC mismatch" + where());
      }
      raw_buf_ = codec_impl->decompress(stored, c.raw_bytes);
      if (raw_buf_.size() != c.raw_bytes) {
        fail("codec " + std::to_string(c.codec) + " produced " +
             std::to_string(raw_buf_.size()) + " bytes, expected " +
             std::to_string(c.raw_bytes) + where());
      }
      chunk_charge_ = stored.size() + raw_buf_.size();
      stream_.charge(chunk_charge_);
      direct_ = raw_buf_.data();
    } else if (stream_.map_ != nullptr) {
      const std::uint8_t* payload = stream_.map_ + payload_off;
      if (em2s::crc32({payload, c.payload_bytes}) != c.payload_crc) {
        fail("chunk payload CRC mismatch" + where());
      }
      direct_ = payload;
    } else {
      // ifstream backend: one CRC pass over the payload in staging-sized
      // pieces, then rewind and decode through the same staging buffer.
      std::uint32_t running = 0;
      std::uint64_t left = c.payload_bytes;
      in_.seekg(static_cast<std::streamoff>(payload_off));
      while (left > 0) {
        const std::size_t piece =
            static_cast<std::size_t>(std::min<std::uint64_t>(
                staging_.size(), left));
        if (!in_.read(reinterpret_cast<char*>(staging_.data()),
                      static_cast<std::streamsize>(piece))) {
          fail("unexpected end of file inside chunk" + where());
        }
        running = em2s::crc32({staging_.data(), piece}, running);
        left -= piece;
      }
      if (running != c.payload_crc) {
        fail("chunk payload CRC mismatch" + where());
      }
      in_.seekg(static_cast<std::streamoff>(payload_off));
      direct_ = nullptr;
      loaded_ = 0;
      staging_pos_ = 0;
      staging_len_ = 0;
    }
    in_chunk_ = true;
  }

  void close_chunk() {
    if (consumed_ != raw_bytes_) {
      fail("chunk payload has " +
           std::to_string(raw_bytes_ - consumed_) +
           " leftover bytes after the last record (thread " +
           std::to_string(thread_) + ", chunk " +
           std::to_string(chunk_idx_) + ")");
    }
    if (chunk_charge_ != 0) {
      stream_.release(chunk_charge_);
      chunk_charge_ = 0;
      raw_buf_.clear();
    }
    in_chunk_ = false;
    ++chunk_idx_;
  }

  EM2_ALWAYS_INLINE std::uint8_t next_byte() {
    if (consumed_ == raw_bytes_) {
      fail("corrupt varint: record runs past the chunk payload (thread " +
           std::to_string(thread_) + ", chunk " +
           std::to_string(chunk_idx_) + ", record " +
           std::to_string(records_done_) + ")");
    }
    ++consumed_;
    if (direct_ != nullptr) {
      return *direct_++;
    }
    if (staging_pos_ == staging_len_) {
      fill_staging();
    }
    return staging_[staging_pos_++];
  }

  void fill_staging() {
    const std::uint64_t left = raw_bytes_ - loaded_;
    const std::size_t piece = static_cast<std::size_t>(
        std::min<std::uint64_t>(staging_.size(), left));
    if (piece == 0 ||
        !in_.read(reinterpret_cast<char*>(staging_.data()),
                  static_cast<std::streamsize>(piece))) {
      fail("unexpected end of file inside chunk (thread " +
           std::to_string(thread_) + ", chunk " +
           std::to_string(chunk_idx_) + ")");
    }
    loaded_ += piece;
    staging_len_ = piece;
    staging_pos_ = 0;
  }

  std::uint64_t get_varint() {
    std::uint64_t value = 0;
    unsigned shift = 0;
    while (true) {
      const std::uint8_t b = next_byte();
      value |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
      if ((b & 0x80u) == 0) {
        return value;
      }
      shift += 7;
      if (shift > 63) {
        fail("corrupt varint: longer than 10 bytes (thread " +
             std::to_string(thread_) + ", chunk " +
             std::to_string(chunk_idx_) + ", record " +
             std::to_string(records_done_) + ")");
      }
    }
  }

  Access decode_record() {
    Access a;
    prev_addr_ += em2s::zigzag_decode(get_varint());
    a.addr = prev_addr_;
    const std::uint64_t packed = get_varint();
    if ((packed >> 1) > 0xFFFFFFFFull) {
      fail("gap " + std::to_string(packed >> 1) +
           " out of range (thread " + std::to_string(thread_) +
           ", chunk " + std::to_string(chunk_idx_) + ", record " +
           std::to_string(records_done_) + ")");
    }
    a.op = static_cast<MemOp>(packed & 1);
    a.gap = static_cast<std::uint32_t>(packed >> 1);
    ++records_done_;
    return a;
  }

  void read_at(std::uint64_t offset, std::uint8_t* dst, std::size_t n) {
    if (stream_.map_ != nullptr) {
      std::memcpy(dst, stream_.map_ + offset, n);
      return;
    }
    in_.seekg(static_cast<std::streamoff>(offset));
    if (!in_.read(reinterpret_cast<char*>(dst),
                  static_cast<std::streamsize>(n))) {
      fail("unexpected end of file (thread " + std::to_string(thread_) +
           ", chunk " + std::to_string(chunk_idx_) + ")");
    }
  }

  const TraceStream& stream_;
  const TraceStream::ThreadMeta& meta_;
  std::size_t thread_;

  std::vector<Access> batch_;
  std::uint64_t base_charge_ = 0;
  std::uint64_t chunk_charge_ = 0;

  // Chunk walk state.
  std::size_t chunk_idx_ = 0;
  bool in_chunk_ = false;
  std::uint32_t records_done_ = 0;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t consumed_ = 0;
  Addr prev_addr_ = 0;

  // Byte backends: `direct_` walks mmap'd or decompressed memory; the
  // staging buffer pages the ifstream fallback.
  const std::uint8_t* direct_ = nullptr;
  std::vector<std::uint8_t> raw_buf_;
  std::ifstream in_;
  std::vector<std::uint8_t> staging_;
  std::uint64_t loaded_ = 0;
  std::size_t staging_pos_ = 0;
  std::size_t staging_len_ = 0;
};

TraceStream::TraceStream(const std::string& path, const Options& opts)
    : path_(path), codecs_(opts.codecs) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail("cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  file_size_ = static_cast<std::uint64_t>(in.tellg());
  if (file_size_ < em2s::kHeaderBytes + em2s::kTrailerBytes) {
    fail("truncated file (" + std::to_string(file_size_) +
         " bytes; an EM2S stream needs at least " +
         std::to_string(em2s::kHeaderBytes + em2s::kTrailerBytes) + ")");
  }

  // Header.
  in.seekg(0);
  std::array<char, 4> magic{};
  std::uint32_t block_bytes = 0;
  std::uint32_t nthreads = 0;
  in.read(magic.data(), magic.size());
  in.read(reinterpret_cast<char*>(&version_), 4);
  in.read(reinterpret_cast<char*>(&block_bytes), 4);
  in.read(reinterpret_cast<char*>(&nthreads), 4);
  if (!in || magic != em2s::kMagic) {
    fail("bad magic (not an EM2S trace stream)");
  }
  if (version_ != em2s::kVersion) {
    fail("unsupported version " + std::to_string(version_) +
         " (expected " + std::to_string(em2s::kVersion) + ")");
  }
  check_block_bytes(block_bytes);
  if (nthreads > em2s::kMaxThreads) {
    fail("implausible thread count " + std::to_string(nthreads));
  }

  // Trailer, then the CRC-authenticated footer.
  in.seekg(static_cast<std::streamoff>(file_size_ - em2s::kTrailerBytes));
  std::uint64_t footer_offset = 0;
  std::uint32_t footer_crc = 0;
  std::array<char, 4> trailer_magic{};
  in.read(reinterpret_cast<char*>(&footer_offset), 8);
  in.read(reinterpret_cast<char*>(&footer_crc), 4);
  in.read(trailer_magic.data(), trailer_magic.size());
  if (!in || trailer_magic != em2s::kTrailerMagic) {
    fail("bad trailer magic (truncated or not an EM2S trace stream)");
  }
  if (footer_offset < em2s::kHeaderBytes ||
      footer_offset > file_size_ - em2s::kTrailerBytes) {
    fail("footer offset " + std::to_string(footer_offset) +
         " out of range");
  }
  std::vector<std::uint8_t> footer(static_cast<std::size_t>(
      file_size_ - em2s::kTrailerBytes - footer_offset));
  in.seekg(static_cast<std::streamoff>(footer_offset));
  if (!footer.empty() &&
      !in.read(reinterpret_cast<char*>(footer.data()),
               static_cast<std::streamsize>(footer.size()))) {
    fail("truncated footer");
  }
  if (em2s::crc32(footer) != footer_crc) {
    fail("footer CRC mismatch (corrupt chunk index)");
  }

  // Chunk index: everything a cursor will later act on is validated
  // here, against the authenticated bytes.
  FooterParser fp(footer);
  const auto footer_threads = fp.take<std::uint32_t>("thread count");
  if (footer_threads != nthreads) {
    fail("footer thread count " + std::to_string(footer_threads) +
         " disagrees with header " + std::to_string(nthreads));
  }
  const std::uint64_t max_chunks =
      file_size_ / (em2s::kChunkHeaderBytes + 1);
  threads_.resize(nthreads);
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    ThreadMeta& tm = threads_[t];
    tm.native = fp.take<CoreId>("native core");
    if (tm.native < 0) {
      fail("negative native core " + std::to_string(tm.native) +
           " for thread " + std::to_string(t));
    }
    tm.total_records = fp.take<std::uint64_t>("record total");
    const auto nchunks = fp.take<std::uint32_t>("chunk count");
    if (nchunks > max_chunks) {
      fail("implausible chunk count " + std::to_string(nchunks) +
           " for thread " + std::to_string(t));
    }
    tm.chunks.reserve(nchunks);
    std::uint64_t records_sum = 0;
    for (std::uint32_t k = 0; k < nchunks; ++k) {
      em2s::ChunkMeta c;
      c.offset = fp.take<std::uint64_t>("chunk offset");
      c.records = fp.take<std::uint32_t>("chunk record count");
      c.payload_bytes = fp.take<std::uint32_t>("chunk payload size");
      c.raw_bytes = fp.take<std::uint32_t>("chunk raw size");
      c.codec = fp.take<std::uint8_t>("chunk codec");
      c.payload_crc = fp.take<std::uint32_t>("chunk CRC");
      const auto where = " (thread " + std::to_string(t) + ", chunk " +
                         std::to_string(k) + ")";
      if (c.offset < em2s::kHeaderBytes ||
          c.offset + em2s::kChunkHeaderBytes + c.payload_bytes >
              footer_offset) {
        fail("chunk extends past the footer" + where);
      }
      if (c.records == 0 || c.payload_bytes == 0 || c.raw_bytes == 0) {
        fail("empty chunk" + where);
      }
      if (c.raw_bytes > em2s::kMaxChunkBytes) {
        fail("implausible chunk size " + std::to_string(c.raw_bytes) +
             where);
      }
      if (c.records > c.raw_bytes / em2s::kMinRecordBytes) {
        fail("record count " + std::to_string(c.records) +
             " cannot fit a payload of " + std::to_string(c.raw_bytes) +
             " bytes" + where);
      }
      if (c.codec == 0 && c.payload_bytes != c.raw_bytes) {
        fail("stored size " + std::to_string(c.payload_bytes) +
             " disagrees with raw size " + std::to_string(c.raw_bytes) +
             " for an uncompressed chunk" + where);
      }
      if (c.codec != 0) {
        (void)codec_for(c.codec);  // fails fast on unknown codec ids
      }
      records_sum += c.records;
      tm.chunks.push_back(c);
    }
    if (records_sum != tm.total_records) {
      fail("chunk index sums to " + std::to_string(records_sum) +
           " records but thread " + std::to_string(t) + " promises " +
           std::to_string(tm.total_records));
    }
    total_accesses_ += tm.total_records;
  }
  if (fp.remaining() != 0) {
    fail("footer has " + std::to_string(fp.remaining()) +
         " trailing bytes");
  }
  in.close();
  init_geometry(nthreads, block_bytes);

#if EM2_HAVE_MMAP
  if (!opts.force_istream) {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ >= 0) {
      void* m = ::mmap(nullptr, static_cast<std::size_t>(file_size_),
                       PROT_READ, MAP_PRIVATE, fd_, 0);
      if (m != MAP_FAILED) {
        map_ = static_cast<const std::uint8_t*>(m);
        map_len_ = file_size_;
      } else {
        ::close(fd_);
        fd_ = -1;
      }
    }
  }
#else
  (void)opts;
#endif
}

TraceStream::~TraceStream() {
#if EM2_HAVE_MMAP
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_),
             static_cast<std::size_t>(map_len_));
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
#endif
}

CoreId TraceStream::native_core(std::size_t thread) const {
  EM2_ASSERT(thread < threads_.size(), "thread id outside the stream");
  return threads_[thread].native;
}

std::unique_ptr<AccessCursor> TraceStream::make_cursor(
    std::size_t thread) const {
  EM2_ASSERT(thread < threads_.size(), "thread id outside the stream");
  return std::make_unique<ThreadCursor>(*this, thread);
}

void TraceStream::set_stream_window(std::uint64_t bytes) const {
  if (bytes != 0 && bytes < min_stream_window()) {
    throw std::invalid_argument(
        "stream window of " + std::to_string(bytes) +
        " bytes is below the minimum of " +
        std::to_string(min_stream_window()) + " (" +
        std::to_string(num_threads()) + " threads x " +
        std::to_string(kMinCursorBytes) + " bytes per cursor)");
  }
  window_.store(bytes, std::memory_order_relaxed);
}

const em2s::ChunkCodec* TraceStream::codec_for(std::uint8_t id) const {
  for (const em2s::ChunkCodec* codec : codecs_) {
    if (codec != nullptr && codec->id() == id) {
      return codec;
    }
  }
  // Built-in codecs need no registration (caller-supplied ones above may
  // shadow them): an em2z file opens anywhere a verbatim one does.
  for (const em2s::ChunkCodec* codec : em2s::builtin_codecs()) {
    if (codec->id() == id) {
      return codec;
    }
  }
  fail("unknown chunk codec id " + std::to_string(id) +
       " (neither built in nor registered with the reader)");
}

void TraceStream::charge(std::uint64_t bytes) const {
  const std::uint64_t now =
      resident_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t prev = peak_.load(std::memory_order_relaxed);
  while (prev < now && !peak_.compare_exchange_weak(
                           prev, now, std::memory_order_relaxed)) {
  }
}

void TraceStream::release(std::uint64_t bytes) const {
  resident_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace em2
