// TraceSet <-> EM2S converters.
//
// write_trace_stream + read_trace_stream round-trip a TraceSet through
// the streaming format bit-identically (addresses, ops, gaps, natives,
// block geometry); materialize() turns any TraceSource into a TraceSet
// for the whole-trace consumers (exec mode's program compiler, optimal
// mode's DP), reusing the backing set when the source already has one.
#pragma once

#include <string>

#include "trace/stream/reader.hpp"
#include "trace/stream/source.hpp"
#include "trace/stream/writer.hpp"
#include "trace/trace.hpp"

namespace em2 {

/// Writes `traces` to `path` in EM2S format.  Returns false if any write
/// failed (disk full, unwritable path).
bool write_trace_stream(const std::string& path, const TraceSet& traces,
                        const TraceWriter::Options& opts = {});

/// Loads a whole EM2S file into memory.  Throws TraceFormatError on any
/// format defect.
TraceSet read_trace_stream(const std::string& path,
                           const TraceStream::Options& opts = {});

/// Drains `source` into an in-memory TraceSet.  When the source is an
/// in-memory view its backing set is copied directly; a streamed source
/// is decoded through its cursors.
TraceSet materialize(const TraceSource& source);

/// True when both sets have identical geometry, natives, and per-thread
/// access sequences (addr, op, and gap all compared).
bool equal_traces(const TraceSet& a, const TraceSet& b);

}  // namespace em2
