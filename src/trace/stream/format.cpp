#include "trace/stream/format.hpp"

#include <cstring>

namespace em2::em2s {
namespace {

/// Slice-by-8 tables: table[0] is the classic byte-at-a-time CRC table;
/// table[k] advances a byte through k additional zero bytes, so eight
/// bytes fold in one step instead of eight dependent lookups — chunk
/// verification sits on the streamed-ingestion hot path, where the
/// byte-serial loop's ~1 B/cycle becomes the bottleneck.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc =
    make_crc_tables();

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kCrc[7][lo & 0xFFu] ^ kCrc[6][(lo >> 8) & 0xFFu] ^
        kCrc[5][(lo >> 16) & 0xFFu] ^ kCrc[4][lo >> 24] ^
        kCrc[3][hi & 0xFFu] ^ kCrc[2][(hi >> 8) & 0xFFu] ^
        kCrc[1][(hi >> 16) & 0xFFu] ^ kCrc[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = kCrc[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
    --n;
  }
  return c ^ 0xFFFFFFFFu;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<std::uint8_t>(value | 0x80u));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

}  // namespace em2::em2s
