// em2z: the built-in EM2S chunk codec (id 1).
//
// A chunk's raw payload is already delta/varint coded, so general-purpose
// entropy coding has little left to squeeze — but trace loops revisit the
// same address strides over and over, which leaves long *repeats* of the
// exact varint byte sequences.  em2z is a byte-oriented LZSS that targets
// exactly that: back-references into the bytes already produced, literals
// for everything else.
//
// Token stream (decoded until exactly raw_bytes have been produced):
//
//   control byte c
//     c & 1 == 0   literal run: the next (c >> 1) + 1 bytes (1..128)
//                  are copied to the output verbatim
//     c & 1 == 1   match: (c >> 1) + 4 bytes (4..131) are copied from
//                  `dist` bytes behind the current output position,
//                  where `dist` is the LEB128 varint that follows the
//                  control byte (dist >= 1; overlapping copies are legal
//                  and proceed byte-by-byte, RLE-style)
//
// Hostile input is rejected with TraceFormatError: a truncated token,
// a run or match that would overrun raw_bytes, a distance of zero or
// beyond the produced output, a varint that overruns or overflows, and
// trailing bytes after the final token are all named defects.  The
// stream reader additionally enforces the exact-raw_bytes contract and
// the stored-payload CRC before the codec ever sees the bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/stream/format.hpp"

namespace em2::em2s {

class Em2zCodec final : public ChunkCodec {
 public:
  static constexpr std::uint8_t kId = 1;
  std::uint8_t id() const override { return kId; }
  std::vector<std::uint8_t> compress(
      std::span<const std::uint8_t> raw) const override;
  std::vector<std::uint8_t> decompress(
      std::span<const std::uint8_t> stored,
      std::size_t raw_bytes) const override;
};

/// Codecs every TraceStream accepts without registration (currently just
/// em2z), so a compressed file opens anywhere a verbatim one does.
/// Caller-supplied Options::codecs are consulted first and may shadow a
/// built-in id.
std::span<const ChunkCodec* const> builtin_codecs();

}  // namespace em2::em2s
