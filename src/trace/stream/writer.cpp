#include "trace/stream/writer.hpp"

#include "util/assert.hpp"

namespace em2 {
namespace {

template <typename T>
void put(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, std::uint32_t block_bytes,
                         std::span<const CoreId> natives,
                         const Options& opts)
    : out_(path, std::ios::binary), opts_(opts) {
  EM2_ASSERT(opts_.chunk_bytes >= 64, "chunk target too small to batch");
  EM2_ASSERT(opts_.chunk_bytes <= em2s::kMaxChunkBytes,
             "chunk target above the reader's acceptance cap");
  EM2_ASSERT(opts_.codec == nullptr || opts_.codec->id() != 0,
             "codec id 0 is reserved for stored-verbatim payloads");
  threads_.resize(natives.size());
  for (std::size_t t = 0; t < natives.size(); ++t) {
    threads_[t].native = natives[t];
    threads_[t].raw.reserve(opts_.chunk_bytes + em2s::kMaxRecordBytes);
  }
  if (!out_) {
    ok_ = false;
    return;
  }
  out_.write(em2s::kMagic.data(), em2s::kMagic.size());
  put(out_, em2s::kVersion);
  put(out_, block_bytes);
  put(out_, static_cast<std::uint32_t>(natives.size()));
  file_offset_ = em2s::kHeaderBytes;
  ok_ = static_cast<bool>(out_);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::append(std::size_t thread, const Access& a) {
  EM2_ASSERT(thread < threads_.size(), "thread id outside the header");
  PerThread& pt = threads_[thread];
  em2s::put_varint(pt.raw, em2s::zigzag_encode(a.addr - pt.prev_addr));
  em2s::put_varint(pt.raw, (static_cast<std::uint64_t>(a.gap) << 1) |
                               static_cast<std::uint64_t>(a.op));
  pt.prev_addr = a.addr;
  ++pt.buffered_records;
  ++pt.total_records;
  if (pt.raw.size() >= opts_.chunk_bytes) {
    flush_chunk(thread);
  }
}

void TraceWriter::flush_chunk(std::size_t thread) {
  PerThread& pt = threads_[thread];
  if (pt.buffered_records == 0 || !ok_) {
    return;
  }
  const std::vector<std::uint8_t>* stored = &pt.raw;
  std::vector<std::uint8_t> compressed;
  std::uint8_t codec = 0;
  if (opts_.codec != nullptr) {
    compressed = opts_.codec->compress(pt.raw);
    if (compressed.size() <= pt.raw.size()) {
      stored = &compressed;
      codec = opts_.codec->id();
    }
    // else: incompressible chunk (the codec's tokens only added
    // overhead) — stored verbatim under codec id 0, so a codec can never
    // make a file larger than the uncompressed one.  Size-preserving
    // output keeps the codec's id: transforms like the test XOR codec
    // are round-trips too, and the id is what routes their decode.
  }
  em2s::ChunkMeta meta;
  meta.offset = file_offset_;
  meta.records = pt.buffered_records;
  meta.payload_bytes = static_cast<std::uint32_t>(stored->size());
  meta.raw_bytes = static_cast<std::uint32_t>(pt.raw.size());
  meta.codec = codec;
  meta.payload_crc = em2s::crc32(*stored);
  put(out_, static_cast<std::uint32_t>(thread));
  put(out_, meta.records);
  put(out_, meta.payload_bytes);
  put(out_, meta.raw_bytes);
  put(out_, meta.codec);
  put(out_, meta.payload_crc);
  out_.write(reinterpret_cast<const char*>(stored->data()),
             static_cast<std::streamsize>(stored->size()));
  file_offset_ += em2s::kChunkHeaderBytes + stored->size();
  pt.chunks.push_back(meta);
  pt.raw.clear();
  pt.buffered_records = 0;
  pt.prev_addr = 0;  // chunks decode independently
  ok_ = ok_ && static_cast<bool>(out_);
}

bool TraceWriter::close() {
  if (closed_) {
    return ok_;
  }
  closed_ = true;
  for (std::size_t t = 0; t < threads_.size(); ++t) {
    flush_chunk(t);
  }
  const std::uint64_t footer_offset = file_offset_;
  // The footer is serialized into memory first so its CRC can go into the
  // trailer.
  std::vector<std::uint8_t> footer;
  auto put_mem = [&footer](const auto& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    footer.insert(footer.end(), p, p + sizeof(value));
  };
  put_mem(static_cast<std::uint32_t>(threads_.size()));
  for (const PerThread& pt : threads_) {
    put_mem(pt.native);
    put_mem(pt.total_records);
    put_mem(static_cast<std::uint32_t>(pt.chunks.size()));
    for (const em2s::ChunkMeta& c : pt.chunks) {
      put_mem(c.offset);
      put_mem(c.records);
      put_mem(c.payload_bytes);
      put_mem(c.raw_bytes);
      put_mem(c.codec);
      put_mem(c.payload_crc);
    }
  }
  out_.write(reinterpret_cast<const char*>(footer.data()),
             static_cast<std::streamsize>(footer.size()));
  put(out_, footer_offset);
  put(out_, em2s::crc32(footer));
  out_.write(em2s::kTrailerMagic.data(), em2s::kTrailerMagic.size());
  out_.flush();
  ok_ = ok_ && static_cast<bool>(out_);
  out_.close();
  return ok_;
}

}  // namespace em2
