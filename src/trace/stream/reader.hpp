// TraceStream: the bounded-memory EM2S reader.
//
// Opening a stream parses and authenticates only the fixed-size header
// and the CRC-protected footer (chunk index); access payloads stay on
// disk.  Each ThreadCursor then decodes its thread's chunks one batch at
// a time into a small buffer sized from the stream window, so the peak
// resident footprint of a run is window-bounded no matter how large the
// trace is: budget-per-cursor = stream_window / num_threads, of which
// half holds decoded accesses and a quarter stages raw file bytes (the
// remainder is slack for the transient codec buffers).
//
// Byte acquisition has two backends behind one decode path: mmap when
// available (zero-copy; varints decode straight out of the page cache)
// and a plain buffered-ifstream fallback (portable; also selectable via
// Options::force_istream, which the parity tests use).  Reports from
// either backend are byte-identical — only how bytes reach the decoder
// differs.
//
// Every way a file can lie throws TraceFormatError naming the defect:
// truncation anywhere destroys the trailer; footer corruption fails the
// trailer CRC; a chunk header that disagrees with the authenticated
// index is named field-by-field; payload corruption fails the per-chunk
// CRC; varints that overrun or overflow, record counts that cannot fit
// their payload, and chunk-count/total mismatches are all rejected at
// open or first touch.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/stream/format.hpp"
#include "trace/stream/source.hpp"

namespace em2 {

class TraceStream final : public TraceSource {
 public:
  struct Options {
    /// Skip the mmap backend even where available (parity testing,
    /// diagnostics).
    bool force_istream = false;
    /// Extra codecs accepted for compressed chunks (id != 0).  Pointees
    /// must outlive the stream.  Built-in codecs (codec.hpp) are always
    /// accepted; entries here are consulted first and may shadow a
    /// built-in id.  A chunk whose id matches neither fails at open with
    /// TraceFormatError.
    std::vector<const em2s::ChunkCodec*> codecs;
  };

  /// Opens and validates `path` (header, trailer, footer CRC, full chunk
  /// index).  Throws TraceFormatError on any defect.
  TraceStream(const std::string& path, const Options& opts);
  explicit TraceStream(const std::string& path)
      : TraceStream(path, Options{}) {}
  ~TraceStream() override;

  CoreId native_core(std::size_t thread) const override;
  std::uint64_t total_accesses() const override {
    return total_accesses_;
  }
  std::unique_ptr<AccessCursor> make_cursor(
      std::size_t thread) const override;

  /// Hard budget for this stream's read-side buffers, divided evenly
  /// across per-thread cursors (0 = unlimited: cursors use a fixed
  /// default batch size instead).  Applies to cursors created after the
  /// call.  Throws std::invalid_argument for a non-zero window below
  /// min_stream_window().
  void set_stream_window(std::uint64_t bytes) const override;
  std::uint64_t stream_window() const noexcept {
    return window_.load(std::memory_order_relaxed);
  }
  std::uint64_t min_stream_window() const override {
    return static_cast<std::uint64_t>(num_threads()) * kMinCursorBytes;
  }

  std::uint64_t resident_trace_bytes() const override {
    return resident_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_resident_trace_bytes() const override {
    return peak_.load(std::memory_order_relaxed);
  }

  bool using_mmap() const noexcept { return map_ != nullptr; }
  std::uint64_t file_bytes() const noexcept { return file_size_; }
  std::uint32_t version() const noexcept { return version_; }

  /// Smallest per-cursor budget: below this a cursor cannot hold one
  /// decode batch plus its staging buffer.
  static constexpr std::uint64_t kMinCursorBytes = 4096;
  /// Per-cursor budget when the window is unlimited (0).
  static constexpr std::uint64_t kDefaultCursorBytes = 256 * 1024;

 private:
  friend class ThreadCursor;

  struct ThreadMeta {
    CoreId native = kNoCore;
    std::uint64_t total_records = 0;
    std::vector<em2s::ChunkMeta> chunks;
  };

  const em2s::ChunkCodec* codec_for(std::uint8_t id) const;
  void charge(std::uint64_t bytes) const;
  void release(std::uint64_t bytes) const;

  std::string path_;
  std::uint64_t file_size_ = 0;
  std::uint32_t version_ = 0;
  std::uint64_t total_accesses_ = 0;
  std::vector<ThreadMeta> threads_;
  std::vector<const em2s::ChunkCodec*> codecs_;

  /// mmap backend state (null when the ifstream fallback is active).
  const std::uint8_t* map_ = nullptr;
  std::uint64_t map_len_ = 0;
  int fd_ = -1;

  mutable std::atomic<std::uint64_t> window_{0};
  mutable std::atomic<std::uint64_t> resident_{0};
  mutable std::atomic<std::uint64_t> peak_{0};
};

}  // namespace em2
