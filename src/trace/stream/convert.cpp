#include "trace/stream/convert.hpp"

namespace em2 {

bool write_trace_stream(const std::string& path, const TraceSet& traces,
                        const TraceWriter::Options& opts) {
  std::vector<CoreId> natives;
  natives.reserve(traces.num_threads());
  for (const ThreadTrace& t : traces.threads()) {
    natives.push_back(t.native_core());
  }
  TraceWriter writer(path, traces.block_bytes(), natives, opts);
  for (std::size_t t = 0; t < traces.num_threads(); ++t) {
    for (const Access& a : traces.thread(t).accesses()) {
      writer.append(t, a);
    }
  }
  return writer.close();
}

TraceSet read_trace_stream(const std::string& path,
                           const TraceStream::Options& opts) {
  return materialize(TraceStream(path, opts));
}

TraceSet materialize(const TraceSource& source) {
  if (const TraceSet* backing = source.backing_traces()) {
    return *backing;
  }
  TraceSet out(source.block_bytes());
  for (std::size_t t = 0; t < source.num_threads(); ++t) {
    ThreadTrace trace(static_cast<ThreadId>(t), source.native_core(t));
    auto cursor = source.make_cursor(t);
    while (const Access* a = cursor->next()) {
      trace.append(*a);
    }
    out.add_thread(std::move(trace));
  }
  return out;
}

bool equal_traces(const TraceSet& a, const TraceSet& b) {
  if (a.block_bytes() != b.block_bytes() ||
      a.num_threads() != b.num_threads()) {
    return false;
  }
  for (std::size_t t = 0; t < a.num_threads(); ++t) {
    const ThreadTrace& ta = a.thread(t);
    const ThreadTrace& tb = b.thread(t);
    if (ta.native_core() != tb.native_core() || ta.size() != tb.size()) {
      return false;
    }
    for (std::size_t i = 0; i < ta.size(); ++i) {
      if (ta[i] != tb[i]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace em2
