// The EM2S on-disk trace format: byte-level layout, varint coding, CRC,
// and the per-chunk compression hook.
//
// EM2S is the streaming counterpart of the packed EM2T format: instead of
// one monolithic per-thread record array (which forces the reader to
// materialize whole threads), the access stream is cut into bounded
// *chunks* that a cursor can decode one batch at a time, so a trace far
// larger than RAM runs through the trace-mode engines under a hard memory
// budget.
//
// File layout (all integers host-endian, like EM2T):
//
//   header   magic "EM2S" | u32 version=1 | u32 block_bytes | u32 nthreads
//   chunks   back-to-back, append order:
//              u32 thread | u32 records | u32 payload_bytes
//              | u32 raw_bytes | u8 codec | u32 payload_crc
//              | payload_bytes bytes of payload
//   footer   u32 nthreads, then per thread:
//              i32 native | u64 total_records | u32 nchunks
//              | nchunks * { u64 offset | u32 records | u32 payload_bytes
//                            | u32 raw_bytes | u8 codec | u32 payload_crc }
//   trailer  u64 footer_offset | u32 footer_crc | magic "EM2F"
//
// A chunk's *raw* payload is the delta/varint coding of its records: per
// record varint(zigzag64(addr - prev_addr)) then varint((gap << 1) | op),
// with prev_addr = 0 at each chunk start (chunks decode independently).
// The *stored* payload is the raw payload run through the chunk's codec
// (id 0 = stored verbatim); payload_crc covers the stored bytes.
//
// Trust model: the trailer CRC authenticates the footer, and the footer's
// chunk index repeats every chunk-header field — so a reader never has to
// believe an unauthenticated chunk header: any disagreement between the
// two is a named TraceFormatError, truncation anywhere kills the trailer,
// and payload corruption fails the per-chunk CRC.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace em2::em2s {

inline constexpr std::array<char, 4> kMagic = {'E', 'M', '2', 'S'};
inline constexpr std::array<char, 4> kTrailerMagic = {'E', 'M', '2', 'F'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 16;
inline constexpr std::size_t kChunkHeaderBytes = 21;
inline constexpr std::size_t kTrailerBytes = 16;
/// Largest raw (decoded) chunk payload a reader will accept; the writer
/// cuts chunks far below this.
inline constexpr std::uint32_t kMaxChunkBytes = 1u << 26;
/// Same cap as the EM2T reader: the mesh tops out orders of magnitude
/// lower.
inline constexpr std::uint32_t kMaxThreads = 1u << 20;
/// A varint for a 64-bit value needs at most 10 bytes; a record is two.
inline constexpr std::size_t kMaxVarintBytes = 10;
inline constexpr std::size_t kMaxRecordBytes = 2 * kMaxVarintBytes;
/// Smallest possible record: two one-byte varints.  Record counts are
/// validated against payload sizes through this bound.
inline constexpr std::size_t kMinRecordBytes = 2;

/// One chunk-index entry: the fields of a chunk header, as repeated in
/// the CRC-protected footer (which is why a reader never has to trust
/// the header copy).
struct ChunkMeta {
  std::uint64_t offset = 0;  ///< file offset of the chunk header
  std::uint32_t records = 0;
  std::uint32_t payload_bytes = 0;  ///< stored (post-codec) size
  std::uint32_t raw_bytes = 0;      ///< encoded (pre-codec) size
  std::uint8_t codec = 0;
  std::uint32_t payload_crc = 0;  ///< crc32 of the stored payload
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), restartable:
/// pass the previous return value as `seed` to extend a running checksum.
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 0);

/// ZigZag maps signed deltas to small unsigned varints: 0, -1, 1, -2 ->
/// 0, 1, 2, 3.  Defined on the raw two's-complement difference, so any
/// u64 address pair round-trips exactly.
constexpr std::uint64_t zigzag_encode(std::uint64_t diff) {
  return (diff << 1) ^
         static_cast<std::uint64_t>(static_cast<std::int64_t>(diff) >> 63);
}
constexpr std::uint64_t zigzag_decode(std::uint64_t z) {
  return (z >> 1) ^ (0 - (z & 1));
}

/// Appends the LEB128 varint coding of `value` to `out`.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Optional per-chunk compression: a codec transforms a chunk's raw
/// payload into the stored payload and back.  Id 0 is reserved for
/// "stored verbatim" and handled inline by the writer/reader; other ids
/// are resolved through the codec list the caller passes in (no global
/// registry — the reader only trusts codecs it was handed).  decompress
/// must produce exactly `raw_bytes` bytes or throw.
class ChunkCodec {
 public:
  virtual ~ChunkCodec() = default;
  /// Non-zero codec id stored in each chunk header.
  virtual std::uint8_t id() const = 0;
  virtual std::vector<std::uint8_t> compress(
      std::span<const std::uint8_t> raw) const = 0;
  virtual std::vector<std::uint8_t> decompress(
      std::span<const std::uint8_t> stored, std::size_t raw_bytes) const = 0;
};

}  // namespace em2::em2s
