#include "trace/stream/source.hpp"

namespace em2 {
namespace {

/// The whole thread is one batch: next() never leaves the inline fast
/// path until the stream ends.
class MemoryCursor final : public AccessCursor {
 public:
  explicit MemoryCursor(std::span<const Access> accesses) {
    cur_ = accesses.data();
    end_ = accesses.data() + accesses.size();
  }

 protected:
  void refill() override {}  // one batch; nothing more to load
};

}  // namespace

std::unique_ptr<AccessCursor> MemoryTraceSource::make_cursor(
    std::size_t thread) const {
  return std::make_unique<MemoryCursor>(traces_.thread(thread).accesses());
}

}  // namespace em2
