#include "trace/stream/codec.hpp"

#include <algorithm>
#include <string>

#include "trace/trace_io.hpp"

namespace em2::em2s {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 131;   // (127 >> 0) + kMinMatch
constexpr std::size_t kMaxLiteralRun = 128;
constexpr std::uint32_t kHashBits = 15;
constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;

std::uint32_t hash4(const std::uint8_t* p) {
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16) |
                          (static_cast<std::uint32_t>(p[3]) << 24);
  return (v * 2654435761u) >> (32 - kHashBits);
}

[[noreturn]] void fail(const std::string& what) {
  throw TraceFormatError("em2z: " + what);
}

}  // namespace

std::vector<std::uint8_t> Em2zCodec::compress(
    std::span<const std::uint8_t> raw) const {
  const std::size_t n = raw.size();
  std::vector<std::uint8_t> out;
  out.reserve(n / 2 + 16);
  // Greedy single-probe matcher: table[h] remembers the most recent
  // position whose 4-byte prefix hashed to h.  Good ratios on the
  // stride-repeat payloads this codec exists for, and cheap enough to
  // run on every flushed chunk.
  std::vector<std::uint32_t> table(1u << kHashBits, kNoPos);
  std::size_t lit_start = 0;  // first byte not yet emitted as a literal
  const auto flush_literals = [&](std::size_t end) {
    while (lit_start < end) {
      const std::size_t run = std::min(end - lit_start, kMaxLiteralRun);
      out.push_back(static_cast<std::uint8_t>((run - 1) << 1));
      out.insert(out.end(), raw.begin() + static_cast<std::ptrdiff_t>(lit_start),
                 raw.begin() + static_cast<std::ptrdiff_t>(lit_start + run));
      lit_start += run;
    }
  };
  std::size_t i = 0;
  while (i + kMinMatch <= n) {
    const std::uint32_t h = hash4(raw.data() + i);
    const std::uint32_t cand = table[h];
    table[h] = static_cast<std::uint32_t>(i);
    if (cand == kNoPos ||
        !std::equal(raw.begin() + static_cast<std::ptrdiff_t>(i),
                    raw.begin() + static_cast<std::ptrdiff_t>(i + kMinMatch),
                    raw.begin() + cand)) {
      ++i;
      continue;
    }
    std::size_t len = kMinMatch;
    const std::size_t cap = std::min(kMaxMatch, n - i);
    while (len < cap && raw[cand + len] == raw[i + len]) {
      ++len;
    }
    flush_literals(i);
    out.push_back(static_cast<std::uint8_t>(((len - kMinMatch) << 1) | 1));
    put_varint(out, static_cast<std::uint64_t>(i) - cand);
    // Seed the skipped positions too: the next stride repeat wants to
    // land just past this match, not back at its start.
    const std::size_t stop = std::min(i + len, n - kMinMatch + 1);
    for (std::size_t j = i + 1; j < stop; ++j) {
      table[hash4(raw.data() + j)] = static_cast<std::uint32_t>(j);
    }
    i += len;
    lit_start = i;
  }
  flush_literals(n);
  return out;
}

std::vector<std::uint8_t> Em2zCodec::decompress(
    std::span<const std::uint8_t> stored, std::size_t raw_bytes) const {
  std::vector<std::uint8_t> out;
  out.reserve(raw_bytes);
  std::size_t p = 0;
  const auto need = [&](std::size_t k) {
    if (stored.size() - p < k) {
      fail("truncated token stream");
    }
  };
  while (out.size() < raw_bytes) {
    need(1);
    const std::uint8_t c = stored[p++];
    if ((c & 1) == 0) {
      const std::size_t run = static_cast<std::size_t>(c >> 1) + 1;
      need(run);
      if (raw_bytes - out.size() < run) {
        fail("literal run overruns the declared raw size");
      }
      out.insert(out.end(), stored.begin() + static_cast<std::ptrdiff_t>(p),
                 stored.begin() + static_cast<std::ptrdiff_t>(p + run));
      p += run;
      continue;
    }
    const std::size_t len = static_cast<std::size_t>(c >> 1) + kMinMatch;
    std::uint64_t dist = 0;
    for (std::uint32_t shift = 0;; shift += 7) {
      need(1);
      const std::uint8_t b = stored[p++];
      if (shift >= 63 && (shift > 63 || b > 1)) {
        fail("match distance varint overflows 64 bits");
      }
      dist |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        break;
      }
    }
    if (dist == 0 || dist > out.size()) {
      fail("match distance of " + std::to_string(dist) +
           " reaches outside the produced output");
    }
    if (raw_bytes - out.size() < len) {
      fail("match overruns the declared raw size");
    }
    // Byte-by-byte on purpose: dist < len is the legal RLE-style overlap.
    const std::size_t src = out.size() - static_cast<std::size_t>(dist);
    for (std::size_t k = 0; k < len; ++k) {
      out.push_back(out[src + k]);
    }
  }
  if (p != stored.size()) {
    fail("trailing bytes after the final token");
  }
  return out;
}

std::span<const ChunkCodec* const> builtin_codecs() {
  static const Em2zCodec em2z;
  static const ChunkCodec* const list[] = {&em2z};
  return list;
}

}  // namespace em2::em2s
