#include "sim/exec_system.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"
#include "util/thread_budget.hpp"

namespace em2 {

ExecSystem::ExecSystem(const Mesh& mesh, const CostModel& cost,
                       const ExecParams& params, const Placement& placement)
    : mesh_(mesh), cost_(cost), params_(params), placement_(placement) {
  EM2_ASSERT(std::has_single_bit(params.block_bytes),
             "block size must be a power of two");
  block_shift_ =
      static_cast<std::uint32_t>(std::countr_zero(params.block_bytes));
  rr_.assign(static_cast<std::size_t>(mesh.num_cores()), 0);
}

ExecSystem::~ExecSystem() = default;

ThreadId ExecSystem::add_thread(RProgram program, CoreId native) {
  EM2_ASSERT(!started_, "threads must be added before run()");
  EM2_ASSERT(native >= 0 && native < mesh_.num_cores(),
             "native core outside the mesh");
  Thread th;
  th.interp = std::make_unique<RegInterpreter>(std::move(program));
  th.ctx.thread = static_cast<ThreadId>(threads_.size());
  th.ctx.native_core = native;
  threads_.push_back(std::move(th));
  return threads_.back().ctx.thread;
}

void ExecSystem::poke(Addr addr, std::uint32_t value) {
  memory_.store(addr, value);
  poke_log_.emplace_back(addr, value);
  const CoreId home = home_of(addr);
  checker_.on_store(kNoThread, addr, value, home, home);
}

CoreId ExecSystem::home_of(Addr addr) const {
  const CoreId home = placement_.home_of_block(addr >> block_shift_);
  // A failed home's address slice is served by its deterministic
  // replacement (identity until the first failure).
  return faults_ != nullptr ? faults_->remap(home) : home;
}

CoreId ExecSystem::thread_location(ThreadId t) const {
  if (params_.arch == MemArch::kCc) {
    return threads_[static_cast<std::size_t>(t)].ctx.native_core;
  }
  return em2_->location(t);
}

Cost ExecSystem::serve_access(ThreadId t, const PendingAccess& mem) {
  const CoreId home = home_of(mem.addr);
  Cost latency = 0;
  CoreId served_at = home;

  switch (params_.arch) {
    case MemArch::kEm2: {
      const AccessOutcome out = em2_->access(t, home, mem.op, mem.addr);
      latency = out.thread_cost + out.memory_latency;
      if (out.evicted_thread != kNoThread) {
        const Thread& victim =
            threads_[static_cast<std::size_t>(out.evicted_thread)];
        set_ready_at(out.evicted_thread,
                     std::max(victim.ready_at, now_ + out.eviction_cost));
      }
      break;
    }
    case MemArch::kEm2Ra: {
      const Addr block = mem.addr >> block_shift_;
      // Sealed-policy dispatch: a switch over the concrete scheme, every
      // branch a direct inlinable call (kCustom alone stays virtual).
      // Inside runs the decide-then-apply split at tile size one:
      // classify + decide first, with no machine mutation, then apply
      // through the same leg primitives the batched trace pipeline uses —
      // so exec mode shares the trace loops' decision/apply seam.
      const HybridOutcome out = ra_policy_->visit([&](auto& p) {
        const CoreId at = hybrid_->location(t);
        if (at == home) {
          return hybrid_->access_local(p, t, home, mem.op, mem.addr);
        }
        DecisionQuery q;
        q.thread = t;
        q.current = at;
        q.home = home;
        q.native = hybrid_->native(t);
        q.op = mem.op;
        q.block = block;
        return hybrid_->access_nonlocal(p, p.decide(q), t, home, mem.op,
                                        mem.addr);
      });
      latency = out.base.thread_cost + out.base.memory_latency;
      if (out.base.evicted_thread != kNoThread) {
        const Thread& victim =
            threads_[static_cast<std::size_t>(out.base.evicted_thread)];
        set_ready_at(
            out.base.evicted_thread,
            std::max(victim.ready_at, now_ + out.base.eviction_cost));
      }
      break;
    }
    case MemArch::kCc: {
      const CoreId at = threads_[static_cast<std::size_t>(t)].ctx.native_core;
      const CcAccessResult out = cc_->access(at, mem.addr, mem.op);
      latency = out.latency;
      // CC executes at the requester by design; the single-home invariant
      // does not apply, so the checker sees at == home.
      served_at = at;
      break;
    }
  }

  // Functional value flow + consistency witness.  Under EM2 and EM2-RA
  // the access is always *served* at the home core (after a migration, or
  // by the home-side remote-access handler); under CC it is served at the
  // requester, where the single-home invariant does not apply.
  Thread& th = threads_[static_cast<std::size_t>(t)];
  const CoreId checker_home =
      params_.arch == MemArch::kCc ? served_at : home;
  const CoreId at_now = params_.arch == MemArch::kCc ? served_at : home;
  if (mem.op == MemOp::kRead) {
    const std::uint32_t value = memory_.load(mem.addr);
    checker_.on_load(t, mem.addr, value, at_now, checker_home);
    RegInterpreter::complete_load(th.ctx, mem.dst_reg, value);
  } else {
    memory_.store(mem.addr, mem.store_value);
    checker_.on_store(t, mem.addr, mem.store_value, at_now, checker_home);
  }
  return latency;
}

void ExecSystem::init_machines() {
  std::vector<CoreId> native;
  native.reserve(threads_.size());
  for (const Thread& th : threads_) {
    native.push_back(th.ctx.native_core);
  }
  switch (params_.arch) {
    case MemArch::kEm2:
      em2_ = std::make_unique<Em2Machine>(mesh_, cost_, params_.em2,
                                          std::move(native));
      break;
    case MemArch::kEm2Ra: {
      // Throws UnknownNameError for a bad spec — the same fail-fast path
      // System::validate takes, so direct ExecSystem users get the
      // uniform "unknown policy '...'" error instead of a late assert.
      ra_policy_.emplace(
          StandardPolicy::make(params_.ra_policy, mesh_, cost_));
      auto hybrid = std::make_unique<HybridMachine>(
          mesh_, cost_, params_.em2, std::move(native));
      hybrid_ = hybrid.get();
      em2_ = std::move(hybrid);
      break;
    }
    case MemArch::kCc:
      // CC never moves a thread: every context executes at its native
      // core, so the resident queues built in run_event are static and no
      // move observer exists to register.
      cc_ = std::make_unique<DirectoryCC>(mesh_, cost_, params_.cc,
                                          placement_);
      break;
  }
  if (em2_ && event_mode_) {
    em2_->set_move_observer(this);
  }
  if (em2_ && faults_ != nullptr) {
    em2_->set_fault_injector(faults_);
  }
}

void ExecSystem::process_due_failures() {
  for (const CoreId dead : faults_->take_due_failures(now_)) {
    for (const Em2Machine::Evacuation& ev : em2_->fail_core(dead)) {
      // The evacuated thread rides the eviction machinery: it re-stalls
      // for the trip to its (remapped) native context on top of whatever
      // stall it already served.
      const Thread& th = threads_[static_cast<std::size_t>(ev.thread)];
      set_ready_at(ev.thread, std::max(th.ready_at, now_ + ev.cost));
    }
  }
}

void ExecSystem::fire_watchdog(const char* reason) {
  watchdog_fired_ = true;
  report_.watchdog_fired = true;
  std::string d = "liveness watchdog: ";
  d += reason;
  d += " (cycle " + std::to_string(now_) + ", last progress at cycle " +
       std::to_string(last_progress_) + "); threads live=" +
       std::to_string(threads_.size() - halted_count_) + " halted=" +
       std::to_string(halted_count_);
  if (event_mode_) {
    d += " ready=" + std::to_string(num_ready_);
    d += wakeups_.empty() ? "; no pending wakeup"
                          : "; earliest wakeup at cycle " +
                                std::to_string(wakeups_.top().at);
  }
  if (faults_ != nullptr) {
    d += "; faults injected=" + std::to_string(faults_->stats().injected) +
         " live_cores=" + std::to_string(faults_->live_cores());
  }
  // A bounded sample of who is stuck and until when.
  int listed = 0;
  for (std::size_t t = 0; t < threads_.size() && listed < 4; ++t) {
    if (!threads_[t].halted) {
      d += (listed == 0 ? "; stalled: " : ", ") + std::string("t") +
           std::to_string(t) + "@ready_at=" +
           std::to_string(threads_[t].ready_at);
      ++listed;
    }
  }
  report_.diagnosis = d;
}

void ExecSystem::core_gains_ready(CoreId core) {
  const auto c = static_cast<std::size_t>(core);
  if (ready_count_[c]++ == 0 && !queued_[c]) {
    ready_cores_.push(core);
    queued_[c] = 1;
  }
}

void ExecSystem::core_loses_ready(CoreId core) {
  // Lazy: a now-empty core's heap entry is discarded when it is popped.
  --ready_count_[static_cast<std::size_t>(core)];
}

void ExecSystem::mark_ready(ThreadId t) {
  is_ready_[static_cast<std::size_t>(t)] = 1;
  ++num_ready_;
  core_gains_ready(core_of_[static_cast<std::size_t>(t)]);
}

void ExecSystem::mark_unready(ThreadId t) {
  is_ready_[static_cast<std::size_t>(t)] = 0;
  --num_ready_;
  core_loses_ready(core_of_[static_cast<std::size_t>(t)]);
}

void ExecSystem::set_ready_at(ThreadId t, Cycle when) {
  Thread& th = threads_[static_cast<std::size_t>(t)];
  th.ready_at = when;
  // A halted victim still gets its ready_at stamped (scan-scheduler
  // parity) but never re-enters the ready set or the wakeup heap.
  if (!event_mode_ || th.halted) {
    return;
  }
  if (when > now_) {
    if (is_ready_[static_cast<std::size_t>(t)]) {
      mark_unready(t);
    }
    wakeups_.push(Wakeup{when, t});
  } else if (!is_ready_[static_cast<std::size_t>(t)]) {
    mark_ready(t);
  }
}

void ExecSystem::on_thread_moved(ThreadId t, CoreId from, CoreId to) {
  // A halted thread's context still occupies its guest slot in the
  // machine and can be displaced by a later migration; it left the
  // scheduling structures when it retired, so only the location mirror
  // moves with it.
  if (threads_[static_cast<std::size_t>(t)].halted) {
    core_of_[static_cast<std::size_t>(t)] = to;
    return;
  }
  // Departure and arrival are each an O(residents) splice into a sorted
  // vector; residency per core is bounded by guest contexts + natives, so
  // this is effectively O(1) — and it replaces the per-cycle rediscovery
  // scan entirely.
  auto& src = residents_[static_cast<std::size_t>(from)];
  src.erase(std::lower_bound(src.begin(), src.end(), t));
  auto& dst = residents_[static_cast<std::size_t>(to)];
  dst.insert(std::lower_bound(dst.begin(), dst.end(), t), t);
  if (is_ready_[static_cast<std::size_t>(t)]) {
    // Re-home the ready accounting without toggling is_ready_.
    core_loses_ready(from);
    core_gains_ready(to);
  }
  core_of_[static_cast<std::size_t>(t)] = to;
}

void ExecSystem::step_thread(ThreadId chosen) {
  Thread& th = threads_[static_cast<std::size_t>(chosen)];
  const StepResult r = th.interp->step(th.ctx);
  finish_step(chosen, r);
}

void ExecSystem::finish_step(ThreadId chosen, const StepResult& r) {
  Thread& th = threads_[static_cast<std::size_t>(chosen)];
  ++report_.instructions;
  last_progress_ = now_;
  switch (r.kind) {
    case StepKind::kDone:
      th.halted = true;
      ++halted_count_;
      report_.finish_cycle[static_cast<std::size_t>(chosen)] = now_;
      if (event_mode_) {
        mark_unready(chosen);  // a stepped thread is always ready
        auto& res =
            residents_[static_cast<std::size_t>(
                core_of_[static_cast<std::size_t>(chosen)])];
        res.erase(std::lower_bound(res.begin(), res.end(), chosen));
      }
      break;
    case StepKind::kMem: {
      const Cost latency = serve_access(chosen, r.mem);
      set_ready_at(chosen, now_ + latency);
      break;
    }
    case StepKind::kOk:
      break;
  }
}

ThreadId ExecSystem::select_ready_resident(CoreId core) const {
  // Round-robin over *global thread ids* starting at rr_[core], restricted
  // to this core's residents — exactly the order the scan scheduler's
  // probe loop visits, so both schedulers pick the same thread.
  const auto& res = residents_[static_cast<std::size_t>(core)];
  const auto start = static_cast<ThreadId>(
      rr_[static_cast<std::size_t>(core)] % threads_.size());
  const auto pivot = std::lower_bound(res.begin(), res.end(), start);
  for (auto it = pivot; it != res.end(); ++it) {
    if (is_ready_[static_cast<std::size_t>(*it)]) {
      return *it;
    }
  }
  for (auto it = res.begin(); it != pivot; ++it) {
    if (is_ready_[static_cast<std::size_t>(*it)]) {
      return *it;
    }
  }
  return kNoThread;
}

void ExecSystem::init_event_structures() {
  const std::size_t n_threads = threads_.size();
  const auto n_cores = static_cast<std::size_t>(mesh_.num_cores());
  residents_.assign(n_cores, {});
  ready_count_.assign(n_cores, 0);
  queued_.assign(n_cores, 0);
  is_ready_.assign(n_threads, 0);
  core_of_.resize(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    const CoreId c = threads_[t].ctx.native_core;
    core_of_[t] = c;
    // Ascending t keeps each per-core vector sorted by construction.
    residents_[static_cast<std::size_t>(c)].push_back(
        static_cast<ThreadId>(t));
  }
  for (std::size_t t = 0; t < n_threads; ++t) {
    mark_ready(static_cast<ThreadId>(t));  // every thread starts ready
  }
}

void ExecSystem::run_event(Cycle max_cycles) {
  const std::size_t n_threads = threads_.size();
  init_event_structures();

  while (halted_count_ < n_threads) {
    if (now_ >= max_cycles) {
      break;
    }
    if (num_ready_ == 0) {
      // Nothing can issue: jump straight to the earliest wakeup instead of
      // idling one cycle at a time (the scan scheduler burns a full
      // O(cores x threads) probe pass per idle cycle).  Under fault
      // injection a pending core failure, and with a watchdog its
      // deadline, bound the jump too.
      while (!wakeups_.empty()) {
        const Wakeup& w = wakeups_.top();
        const Thread& th = threads_[static_cast<std::size_t>(w.thread)];
        if (!th.halted && th.ready_at == w.at) {
          break;  // valid (an is_ready_ thread would make num_ready_ > 0)
        }
        wakeups_.pop();  // stale: superseded by a later re-stall
      }
      std::uint64_t wake = wakeups_.empty()
                               ? FaultInjector::kNever
                               : static_cast<std::uint64_t>(
                                     wakeups_.top().at);
      if (faults_ != nullptr) {
        wake = std::min(wake, faults_->next_failure_at());
      }
      if (params_.watchdog_cycles > 0) {
        wake = std::min(wake, static_cast<std::uint64_t>(
                                  last_progress_ + params_.watchdog_cycles));
      }
      // With no wakeup, no pending failure, and no watchdog the scheduler
      // would hang — historically an assert; a configured watchdog turns
      // it into the structured diagnosis below instead.
      EM2_ASSERT(wake != FaultInjector::kNever,
                 "live threads but no pending wakeup: scheduler would hang");
      if (wake > static_cast<std::uint64_t>(max_cycles)) {
        now_ = max_cycles;  // the scan scheduler idles up to the budget
        break;
      }
      now_ = static_cast<Cycle>(wake);
    } else {
      ++now_;
    }
    if (params_.watchdog_cycles > 0 &&
        now_ - last_progress_ >= params_.watchdog_cycles) {
      fire_watchdog("no instruction retired within the watchdog window");
      break;
    }
    fault_tick();

    while (!wakeups_.empty() && wakeups_.top().at <= now_) {
      const Wakeup w = wakeups_.top();
      wakeups_.pop();
      const Thread& th = threads_[static_cast<std::size_t>(w.thread)];
      if (th.halted || is_ready_[static_cast<std::size_t>(w.thread)] ||
          th.ready_at != w.at) {
        continue;  // stale entry
      }
      mark_ready(w.thread);
    }

    // Step each ready core once, in ascending core order, by draining the
    // dense ready-core heap.  A migration landing on a *later* core this
    // cycle pushes that core and is popped before the cycle ends (as the
    // scan scheduler would see it), while cores at or below the cursor —
    // including a stepped core that stays ready — are deferred to the next
    // cycle via deferred_ (ditto).
    CoreId cursor = -1;
    deferred_.clear();
    while (!ready_cores_.empty()) {
      const CoreId core = ready_cores_.top();
      ready_cores_.pop();
      const auto c = static_cast<std::size_t>(core);
      queued_[c] = 0;
      if (ready_count_[c] == 0) {
        continue;  // stale: went unready since it was queued
      }
      if (core <= cursor) {
        deferred_.push_back(core);  // became ready behind the cursor
        continue;
      }
      cursor = core;
      if (faults_ != nullptr && faults_->core_stalled(core, now_)) {
        // Frozen window: the core issues nothing this cycle but its
        // residents stay ready — retry next cycle.  rr_ is untouched, as
        // in the scan scheduler, which probes and then discards.
        deferred_.push_back(core);
        continue;
      }
      const ThreadId chosen = select_ready_resident(core);
      EM2_ASSERT(chosen != kNoThread,
                 "ready-core heap out of sync with resident queues");
      rr_[c] = static_cast<std::uint32_t>(chosen + 1);
      step_thread(chosen);
      if (ready_count_[c] > 0 && !queued_[c]) {
        deferred_.push_back(core);  // still has ready residents: next cycle
      }
    }
    for (const CoreId core : deferred_) {
      const auto c = static_cast<std::size_t>(core);
      if (!queued_[c]) {
        ready_cores_.push(core);
        queued_[c] = 1;
      }
    }
  }
}

void ExecSystem::run_scan(Cycle max_cycles) {
  // The reference scheduler: O(cores x threads) probing per cycle, kept
  // verbatim as the executable specification of the scheduling order.
  const std::size_t n = threads_.size();
  while (halted_count_ < n && now_ < max_cycles) {
    ++now_;
    if (params_.watchdog_cycles > 0 &&
        now_ - last_progress_ >= params_.watchdog_cycles) {
      fire_watchdog("no instruction retired within the watchdog window");
      break;
    }
    fault_tick();
    for (CoreId core = 0; core < mesh_.num_cores(); ++core) {
      // Pick one ready resident context, round-robin per core.
      ThreadId chosen = kNoThread;
      for (std::size_t probe = 0; probe < n; ++probe) {
        const std::size_t idx =
            (rr_[static_cast<std::size_t>(core)] + probe) % n;
        const Thread& th = threads_[idx];
        if (!th.halted && th.ready_at <= now_ &&
            thread_location(static_cast<ThreadId>(idx)) == core) {
          chosen = static_cast<ThreadId>(idx);
          break;
        }
      }
      if (chosen == kNoThread) {
        continue;
      }
      // The stall draw happens only when the core would actually issue,
      // so both schedulers count the identical (core, window) stalls.
      // rr_ is committed only on issue, matching the event scheduler.
      if (faults_ != nullptr && faults_->core_stalled(core, now_)) {
        continue;
      }
      rr_[static_cast<std::size_t>(core)] =
          static_cast<std::uint32_t>(chosen + 1);
      step_thread(chosen);
    }
  }
}

std::uint32_t ExecSystem::resolve_shards() const {
  std::uint32_t s = params_.shards;
  if (s == 0) {
    // Auto: the shared process thread budget.  At skew=0 the shard count
    // never affects the report, so auto is always safe; at skew>0 the
    // resolved count is part of the simulated configuration and therefore
    // machine-dependent — pin shards explicitly for reproducible relaxed
    // runs (System::validate enforces this).
    s = static_cast<std::uint32_t>(thread_budget_total());
  }
  const auto cores = static_cast<std::uint32_t>(mesh_.num_cores());
  return std::min(std::max<std::uint32_t>(s, 1), cores);
}

ExecReport ExecSystem::run(Cycle max_cycles) {
  EM2_ASSERT(!started_,
             "ExecSystem::run is single-shot: build a new system to re-run "
             "(interpreters, machines, and checker state are consumed)");
  started_ = true;
  event_mode_ = params_.scheduler == SchedulerKind::kEventDriven;
  faults_ = params_.faults;
  EM2_ASSERT(faults_ == nullptr || params_.arch != MemArch::kCc,
             "fault injection is EM2/EM2-RA only (no CC fault model)");
  const std::uint32_t nshards = resolve_shards();
  EM2_ASSERT(nshards <= 1 || event_mode_,
             "sharded execution requires the event-driven scheduler");
  if (nshards > 1 && params_.skew > 0) {
    EM2_ASSERT(params_.arch != MemArch::kCc,
               "relaxed-sync sharding (skew > 0) has no CC partition");
    EM2_ASSERT(faults_ == nullptr,
               "relaxed-sync sharding (skew > 0) rejects fault injection "
               "(the injector's accounting is order-dependent)");
    EM2_ASSERT(!params_.em2.model_caches,
               "relaxed-sync sharding (skew > 0) rejects modelled caches");
    return run_relaxed(max_cycles, nshards);
  }
  init_machines();

  report_ = ExecReport{};
  report_.finish_cycle.assign(threads_.size(), 0);

  if (event_mode_ && nshards > 1) {
    run_event_parallel(max_cycles, nshards);
  } else if (event_mode_) {
    run_event(max_cycles);
  } else {
    run_scan(max_cycles);
  }

  report_.cycles = now_;
  report_.timed_out = halted_count_ < threads_.size();
  report_.consistent = checker_.ok() && !report_.timed_out;
  report_.violations = checker_.violations();
  report_.conservation_ok = em2_ ? em2_->verify_thread_conservation() : true;
  if (em2_) {
    report_.counters = em2_->counters().named();
  } else if (cc_) {
    report_.counters = cc_->counters().named();
  }
  return report_;
}

}  // namespace em2
