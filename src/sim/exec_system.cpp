#include "sim/exec_system.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace em2 {

const char* to_string(MemArch arch) noexcept {
  switch (arch) {
    case MemArch::kEm2:
      return "em2";
    case MemArch::kEm2Ra:
      return "em2-ra";
    case MemArch::kCc:
      return "cc";
  }
  return "?";
}

ExecSystem::ExecSystem(const Mesh& mesh, const CostModel& cost,
                       const ExecParams& params, const Placement& placement)
    : mesh_(mesh), cost_(cost), params_(params), placement_(placement) {
  EM2_ASSERT(std::has_single_bit(params.block_bytes),
             "block size must be a power of two");
  block_shift_ =
      static_cast<std::uint32_t>(std::countr_zero(params.block_bytes));
  rr_.assign(static_cast<std::size_t>(mesh.num_cores()), 0);
}

ExecSystem::~ExecSystem() = default;

ThreadId ExecSystem::add_thread(RProgram program, CoreId native) {
  EM2_ASSERT(!started_, "threads must be added before run()");
  EM2_ASSERT(native >= 0 && native < mesh_.num_cores(),
             "native core outside the mesh");
  Thread th;
  th.interp = std::make_unique<RegInterpreter>(std::move(program));
  th.ctx.thread = static_cast<ThreadId>(threads_.size());
  th.ctx.native_core = native;
  threads_.push_back(std::move(th));
  return threads_.back().ctx.thread;
}

void ExecSystem::poke(Addr addr, std::uint32_t value) {
  memory_.store(addr, value);
  const CoreId home = home_of(addr);
  checker_.on_store(kNoThread, addr, value, home, home);
}

CoreId ExecSystem::home_of(Addr addr) const {
  return placement_.home_of_block(addr >> block_shift_);
}

CoreId ExecSystem::thread_location(ThreadId t) const {
  if (params_.arch == MemArch::kCc) {
    return threads_[static_cast<std::size_t>(t)].ctx.native_core;
  }
  return em2_->location(t);
}

Cost ExecSystem::serve_access(ThreadId t, const PendingAccess& mem) {
  const CoreId home = home_of(mem.addr);
  Cost latency = 0;
  CoreId served_at = home;

  switch (params_.arch) {
    case MemArch::kEm2: {
      const AccessOutcome out = em2_->access(t, home, mem.op, mem.addr);
      latency = out.thread_cost + out.memory_latency;
      if (out.evicted_thread != kNoThread) {
        Thread& victim =
            threads_[static_cast<std::size_t>(out.evicted_thread)];
        victim.ready_at =
            std::max(victim.ready_at, now_ + out.eviction_cost);
      }
      break;
    }
    case MemArch::kEm2Ra: {
      const Addr block = mem.addr >> block_shift_;
      const HybridOutcome out =
          hybrid_->access_hybrid(t, home, mem.op, mem.addr, block);
      latency = out.base.thread_cost + out.base.memory_latency;
      if (out.base.evicted_thread != kNoThread) {
        Thread& victim =
            threads_[static_cast<std::size_t>(out.base.evicted_thread)];
        victim.ready_at =
            std::max(victim.ready_at, now_ + out.base.eviction_cost);
      }
      break;
    }
    case MemArch::kCc: {
      const CoreId at = threads_[static_cast<std::size_t>(t)].ctx.native_core;
      const CcAccessResult out = cc_->access(at, mem.addr, mem.op);
      latency = out.latency;
      // CC executes at the requester by design; the single-home invariant
      // does not apply, so the checker sees at == home.
      served_at = at;
      break;
    }
  }

  // Functional value flow + consistency witness.  Under EM2 and EM2-RA
  // the access is always *served* at the home core (after a migration, or
  // by the home-side remote-access handler); under CC it is served at the
  // requester, where the single-home invariant does not apply.
  Thread& th = threads_[static_cast<std::size_t>(t)];
  const CoreId checker_home =
      params_.arch == MemArch::kCc ? served_at : home;
  const CoreId at_now = params_.arch == MemArch::kCc ? served_at : home;
  if (mem.op == MemOp::kRead) {
    const std::uint32_t value = memory_.load(mem.addr);
    checker_.on_load(t, mem.addr, value, at_now, checker_home);
    RegInterpreter::complete_load(th.ctx, mem.dst_reg, value);
  } else {
    memory_.store(mem.addr, mem.store_value);
    checker_.on_store(t, mem.addr, mem.store_value, at_now, checker_home);
  }
  return latency;
}

ExecReport ExecSystem::run(Cycle max_cycles) {
  if (!started_) {
    started_ = true;
    std::vector<CoreId> native;
    native.reserve(threads_.size());
    for (const Thread& th : threads_) {
      native.push_back(th.ctx.native_core);
    }
    switch (params_.arch) {
      case MemArch::kEm2:
        em2_ = std::make_unique<Em2Machine>(mesh_, cost_, params_.em2,
                                            std::move(native));
        break;
      case MemArch::kEm2Ra: {
        ra_policy_ = make_policy(params_.ra_policy, mesh_, cost_);
        EM2_ASSERT(ra_policy_ != nullptr, "unknown EM2-RA policy spec");
        auto hybrid = std::make_unique<HybridMachine>(
            mesh_, cost_, params_.em2, std::move(native), *ra_policy_);
        hybrid_ = hybrid.get();
        em2_ = std::move(hybrid);
        break;
      }
      case MemArch::kCc:
        cc_ = std::make_unique<DirectoryCC>(mesh_, cost_, params_.cc,
                                            placement_);
        break;
    }
  }

  report_ = ExecReport{};
  report_.finish_cycle.assign(threads_.size(), 0);

  auto all_halted = [&]() {
    return std::all_of(threads_.begin(), threads_.end(),
                       [](const Thread& th) { return th.halted; });
  };

  while (!all_halted() && now_ < max_cycles) {
    ++now_;
    for (CoreId core = 0; core < mesh_.num_cores(); ++core) {
      // Pick one ready resident context, round-robin per core.
      const std::size_t n = threads_.size();
      ThreadId chosen = kNoThread;
      for (std::size_t probe = 0; probe < n; ++probe) {
        const std::size_t idx =
            (rr_[static_cast<std::size_t>(core)] + probe) % n;
        const Thread& th = threads_[idx];
        if (!th.halted && th.ready_at <= now_ &&
            thread_location(static_cast<ThreadId>(idx)) == core) {
          chosen = static_cast<ThreadId>(idx);
          rr_[static_cast<std::size_t>(core)] =
              static_cast<std::uint32_t>(idx + 1);
          break;
        }
      }
      if (chosen == kNoThread) {
        continue;
      }
      Thread& th = threads_[static_cast<std::size_t>(chosen)];
      const StepResult r = th.interp->step(th.ctx);
      ++report_.instructions;
      switch (r.kind) {
        case StepKind::kDone:
          th.halted = true;
          report_.finish_cycle[static_cast<std::size_t>(chosen)] = now_;
          break;
        case StepKind::kMem: {
          const Cost latency = serve_access(chosen, r.mem);
          th.ready_at = now_ + latency;
          break;
        }
        case StepKind::kOk:
          break;
      }
    }
  }

  report_.cycles = now_;
  report_.consistent = checker_.ok() && all_halted();
  report_.violations = checker_.violations();
  if (em2_) {
    report_.counters = em2_->counters().named();
  } else if (cc_) {
    report_.counters = cc_->counters().named();
  }
  return report_;
}

}  // namespace em2
