// Parallel parameter-sweep runner.
//
// Demonstrating the paper's claims at scale means simulating many
// independent configurations (workloads, run lengths, context sizes, mesh
// sizes).  Each sweep point is a self-contained simulation, so the runner
// fans points across hardware threads — a work-stealing chunked scheduler:
// the point space splits into one contiguous chunk per worker, owners
// drain their chunk from the front (core-local atomic, no cross-core
// bouncing on a shared index), and a worker that runs dry steals the
// upper half of a peer's remainder — and collects results IN POINT ORDER:
// the output is byte-identical to the serial loop no matter how many
// workers run, how they interleave, or who stole what (determinism is
// tested, not assumed).  Reductions across points go through the existing
// merge APIs (RunningStat::merge, Histogram::merge, CounterSet::merge,
// FastCounters::merge), mirroring the shard-and-merge pattern of parallel
// graph engines.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/stats.hpp"

namespace em2::sweep {

/// Sweep execution options.
struct Options {
  /// Worker threads; 0 means one per hardware thread.
  unsigned num_threads = 0;
  /// Optional per-point progress callback: invoked as progress(done,
  /// total) after each point completes, with `done` counting completed
  /// points (1..total).  Called from whichever worker finished the point
  /// — the callback MUST be thread-safe (the counter itself is atomic;
  /// only the callback body needs care).  Points that throw still count
  /// as done, so a capture-mode matrix reports every cell.  Keep it
  /// cheap: it runs inside the pool, on the sweep's critical path.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Worker-thread count `opts` resolves to on this machine (>= 1).
unsigned resolve_threads(const Options& opts) noexcept;

namespace detail {

/// Type-erased core: runs body(i) for i in [0, n) across workers.  The
/// body must be safe to call concurrently for distinct i.
void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body,
                 const Options& opts);

}  // namespace detail

/// Evaluates fn(i) for every point i in [0, n) across a thread pool and
/// returns the results indexed by point — identical to the serial
/// `for (i...) out[i] = fn(i)` regardless of thread count or scheduling.
/// `fn` must not MUTATE shared state: each point builds its own machines,
/// and anything shared (e.g. one `const System` across points, as the
/// sweep benches do) may only be used through const, stateless calls.
/// The one sanctioned exception is an INTERNALLY-SYNCHRONIZED cache whose
/// entries are a deterministic function of the key (the System placement
/// cache behind run_matrix, and its calibration cache memoizing the
/// contention pass's HopLatencies per (workload, arch, policy, ...)):
/// memoization then never changes any point's result, only who computes
/// it first.  Unsynchronized or result-changing mutable state still
/// breaks this contract.
///
/// Exception safety: if fn(i) throws, the pool stops claiming new points
/// (points already in flight on other workers still complete), every
/// worker is joined, and the FIRST captured exception is rethrown on the
/// calling thread.  Which points ran besides i is then unspecified and the
/// results are discarded — callers observe an exception, never a torn
/// result vector, and never std::terminate.
template <typename Fn>
auto run(std::size_t n, Fn&& fn, const Options& opts = {})
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  // std::vector<bool> packs elements, so concurrent writes to distinct
  // indices would race; return a struct or int instead.
  static_assert(!std::is_same_v<Result, bool>,
                "sweep::run cannot return bool (vector<bool> is packed); "
                "wrap the flag in a struct or return int");
  std::vector<Result> results(n);
  detail::run_indexed(
      n, [&](std::size_t i) { results[i] = fn(i); }, opts);
  return results;
}

/// Order-preserving reductions over per-point shards via the existing
/// merge APIs.
CounterSet merge_all(const std::vector<CounterSet>& shards);
RunningStat merge_all(const std::vector<RunningStat>& shards);
Histogram merge_all(const std::vector<Histogram>& shards);

}  // namespace em2::sweep
