// Deterministic fault injection: the seeded schedule of transient packet
// drops, core stalls, and permanent core failures, plus the per-run
// bookkeeping of what was injected and how the protocol recovered.
//
// The paper assumes a perfect mesh and perfect cores; a production DSM
// does not get to.  FaultSpec describes a failure scenario the same way
// sim/modes.hpp describes a run mode — one canonical string<->struct
// mapping (`to_string`/`parse_fault_spec`/`fault_spec_from_string`) so a
// bench --faults= flag, a RunSpec, and a report label all mean the same
// scenario, and a typo fails fast.
//
// Determinism contract: every fault draw is a STATELESS hash of
// (seed, stream, identifiers) — never a shared RNG whose state depends on
// scheduling order.  A migration attempt's fate is keyed on (thread,
// per-thread attempt sequence, attempt number); a core stall on (core,
// cycle window); a packet drop on (transport id, attempt); a random core
// failure time on (core).  Two runs of the same (spec, engine,
// configuration) therefore inject the identical fault schedule — and the
// two exec schedulers, which present the same per-thread access sequences
// in the same per-thread order, draw the identical outcomes.
//
// Grammar (comma-separated clauses, any order; "none" alone is the empty
// spec):
//
//   drop=<p>           transient loss: each migration / remote-access /
//                      fabric packet attempt fails with probability p
//   stall=<p>:<c>      core stalls: each (core, c-cycle window) is frozen
//                      with probability p (exec mode only)
//   kill=<core>@<at>   permanent core failure (repeatable).  `at` is a
//                      cycle in exec mode and a global processed-access
//                      index in trace mode.
//   mttf=<cycles>      additionally draw one exponential(mttf) failure
//                      time per core from the seed
//   seed=<n>           fault stream seed (default 1)
//   retries=<n>        max retransmission attempts before degrading
//                      (default 3)
//   timeout=<cycles>   retransmission backoff base; attempt k waits
//                      timeout << min(k, 6) cycles (default 64)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace em2 {

/// One scheduled permanent core failure.
struct CoreFailure {
  CoreId core = 0;
  /// Exec mode: cycle of failure.  Trace mode: global processed-access
  /// index (the trace engines have no cycle clock).
  std::uint64_t at = 0;

  friend bool operator==(const CoreFailure&, const CoreFailure&) = default;
};

/// A complete fault scenario.  The default (`FaultSpec{}`) injects
/// nothing and leaves every engine bit-identical to the fault-free build.
struct FaultSpec {
  /// Per-attempt transient loss probability in [0, 1].
  double drop_rate = 0.0;
  /// Probability a given (core, window) is stalled, in [0, 1].
  double stall_rate = 0.0;
  /// Stall window length in cycles.
  std::uint32_t stall_cycles = 1000;
  /// Explicit permanent core failures.
  std::vector<CoreFailure> kills;
  /// Mean time to (random) permanent core failure; 0 disables.
  std::uint64_t mttf_cycles = 0;
  /// Seed of the stateless fault streams.
  std::uint64_t seed = 1;
  /// Retransmission attempts before a migration degrades (EM2-RA) or
  /// stalls out (pure EM2).
  std::uint32_t max_retries = 3;
  /// Backoff base: attempt k waits retry_timeout << min(k, 6) cycles.
  std::uint64_t retry_timeout = 64;

  /// True iff this spec can inject anything at all.
  bool any() const noexcept {
    return drop_rate > 0.0 || stall_rate > 0.0 || !kills.empty() ||
           mttf_cycles != 0;
  }

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// Canonical spec string; "none" for the empty spec.  Non-default
/// seed/retries/timeout are always printed, so to_string/parse round-trip
/// exactly (the calibration cache keys on this string).
std::string to_string(const FaultSpec& spec);

/// Parses the grammar above; nullopt for malformed input.
std::optional<FaultSpec> parse_fault_spec(std::string_view text) noexcept;

/// Parsing front end that throws UnknownNameError on malformed input —
/// the fail-fast entry benches and tools use for --faults= flags.
FaultSpec fault_spec_from_string(std::string_view text);

/// What kind of fault/recovery event was injected or observed.
enum class FaultEventKind : std::uint8_t {
  kPacketDrop = 0,      ///< a fabric/transport packet was lost
  kMigrationRetry,      ///< a migration succeeded after >= 1 retransmission
  kMigrationDegraded,   ///< EM2-RA: retries exhausted, fell back to RA
  kMigrationStalled,    ///< pure EM2: retries exhausted, waited out outage
  kRemoteRetry,         ///< a remote access needed >= 1 retransmission
  kCoreStall,           ///< a (core, window) froze
  kCoreFailure,         ///< a core failed permanently
  kEvacuation,          ///< a resident thread fled a failed core
  kRenative,            ///< a thread's reserved native context was remapped
};
const char* to_string(FaultEventKind kind) noexcept;

/// One entry of the injected-event log.  `at` is in the engine's time
/// domain (cycles for exec, processed accesses for trace).
struct FaultEvent {
  FaultEventKind kind = FaultEventKind::kPacketDrop;
  std::uint64_t at = 0;
  ThreadId thread = kNoThread;
  CoreId core = -1;
  std::uint32_t attempt = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Aggregate resilience accounting for one run.
struct ResilienceStats {
  /// Total primitive faults injected (drops + stalls + failures).
  std::uint64_t injected = 0;
  std::uint64_t packet_drops = 0;
  /// Extra attempts sent beyond each first attempt.
  std::uint64_t retransmissions = 0;
  std::uint64_t migration_retries = 0;
  std::uint64_t migrations_degraded = 0;
  std::uint64_t migrations_stalled = 0;
  std::uint64_t remote_retries = 0;
  std::uint64_t core_stalls = 0;
  std::uint64_t core_failures = 0;
  std::uint64_t threads_evacuated = 0;
  std::uint64_t threads_renatived = 0;
  /// Faulted operations that completed through the recovery path.
  std::uint64_t recovered = 0;
  /// Extra network cycles charged to recovery (retransmits + backoff).
  Cost recovery_cost = 0;
  /// Distribution of per-recovery extra latency.
  Histogram recovery_latency{4096};
};

/// Per-run fault state: the seeded schedule, the stateless draw streams,
/// the live/failed core map with its deterministic home remap, and the
/// resilience accounting.  One injector serves exactly one run (engines
/// hold it by nullable pointer; null means fault-free, bit for bit).
class FaultInjector {
 public:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};
  /// Injected-event log cap; stats stay exact beyond it.
  static constexpr std::size_t kMaxEvents = 65536;

  /// Validates the spec against the mesh: kill cores must be inside
  /// [0, num_cores) and at least one core must survive all explicit
  /// kills (std::invalid_argument otherwise).  Random mttf failures are
  /// additionally capped so the last core standing never fails.
  FaultInjector(const FaultSpec& spec, std::int32_t num_cores);

  const FaultSpec& spec() const noexcept { return spec_; }
  std::int32_t num_cores() const noexcept { return num_cores_; }

  // --- transient-loss draws (stateless) -----------------------------

  /// Outcome of one faultable operation: how many attempts were lost
  /// before one got through, and whether the retry budget ran out.
  struct AttemptPlan {
    std::uint32_t failed_attempts = 0;
    bool exhausted = false;
  };
  /// Draws the fate of thread `t`'s next migration (bumps t's migration
  /// sequence counter).
  AttemptPlan plan_migration(ThreadId t);
  /// Same for a remote-access round trip (independent stream).
  AttemptPlan plan_remote(ThreadId t);
  /// Should transport attempt `attempt` of fabric packet `id` be lost?
  bool drop_packet(std::uint64_t id, std::uint32_t attempt) const noexcept;

  /// Backoff wait before retransmission attempt `attempt` (exponential,
  /// shift-capped at 6).
  Cost backoff(std::uint32_t attempt) const noexcept {
    return static_cast<Cost>(spec_.retry_timeout
                             << (attempt < 6 ? attempt : 6u));
  }

  // --- core stalls ---------------------------------------------------

  /// True iff `core` is frozen during the window containing `cycle`.
  /// The first observation of each stalled window is counted and logged.
  bool core_stalled(CoreId core, Cycle cycle);

  // --- permanent failures --------------------------------------------

  /// Scheduled failure time of `core` (kNever if it never fails).
  std::uint64_t failure_time(CoreId core) const noexcept {
    return fail_at_[static_cast<std::size_t>(core)];
  }
  /// Earliest not-yet-taken failure time (kNever when none remain).
  std::uint64_t next_failure_at() const noexcept {
    return sched_pos_ < schedule_.size() ? schedule_[sched_pos_].at
                                         : kNever;
  }
  /// Pops every core whose failure time is <= `now`, in (time, core)
  /// order.  The caller is responsible for evacuating them (the protocol
  /// machines' fail_core), which marks them failed here.
  std::vector<CoreId> take_due_failures(std::uint64_t now);
  /// Marks `core` failed and rebuilds the home-remap table.
  void mark_failed(CoreId core);
  bool failed(CoreId core) const noexcept {
    return failed_[static_cast<std::size_t>(core)] != 0;
  }
  std::int32_t live_cores() const noexcept { return live_; }
  /// Deterministic replacement for `core`: itself while live, else the
  /// next live core in ascending wrap-around order.  O(1) table lookup
  /// (the table is rebuilt on each failure — failures are rare).
  CoreId remap(CoreId core) const noexcept {
    return remap_[static_cast<std::size_t>(core)];
  }

  // --- accounting ----------------------------------------------------

  ResilienceStats& stats() noexcept { return stats_; }
  const ResilienceStats& stats() const noexcept { return stats_; }
  /// Appends to the injected-event log (silently stops at kMaxEvents).
  void record(const FaultEvent& event) {
    if (events_.size() < kMaxEvents) {
      events_.push_back(event);
    }
  }
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  /// Current engine time, used to stamp recorded events.  Maintained by
  /// the run loops (cycles in exec mode, processed accesses in trace
  /// mode).
  void set_now(std::uint64_t now) noexcept { now_ = now; }
  std::uint64_t now() const noexcept { return now_; }

 private:
  AttemptPlan plan(std::uint64_t stream, ThreadId t,
                   std::vector<std::uint64_t>& seq);

  FaultSpec spec_;
  std::int32_t num_cores_ = 0;
  std::int32_t live_ = 0;
  /// drop_rate / stall_rate as 64-bit hash thresholds.
  std::uint64_t drop_threshold_ = 0;
  std::uint64_t stall_threshold_ = 0;
  std::vector<std::uint64_t> fail_at_;  // per core; kNever = survives
  std::vector<CoreFailure> schedule_;   // sorted by (at, core)
  std::size_t sched_pos_ = 0;
  std::vector<char> failed_;
  std::vector<CoreId> remap_;
  std::vector<std::uint64_t> mig_seq_;  // per thread, grown on demand
  std::vector<std::uint64_t> rem_seq_;
  /// Last counted stalled window per core (+1; 0 = none yet), so each
  /// stalled window is counted once however often it is probed.
  std::vector<std::uint64_t> stall_seen_;
  std::uint64_t now_ = 0;
  ResilienceStats stats_;
  std::vector<FaultEvent> events_;
};

}  // namespace em2
