#include "sim/faults.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace em2 {
namespace {

/// Shortest round-trip formatting (std::to_chars), so
/// parse(to_string(spec)) == spec bit for bit — the calibration cache
/// keys on the canonical string.
std::string format_double(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  EM2_ASSERT(ec == std::errc{}, "double formatting cannot fail");
  return std::string(buf, ptr);
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size() &&
         std::isfinite(out);
}

/// Stateless 64-bit mixer (the splitmix64 finalizer): every fault draw is
/// mix-chained from (seed, stream, identifiers), never a stateful RNG, so
/// outcomes are independent of scheduling order.
std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::uint64_t draw(std::uint64_t seed, std::uint64_t stream,
                   std::uint64_t a, std::uint64_t b,
                   std::uint64_t c) noexcept {
  std::uint64_t h = mix(seed + 0x9e3779b97f4a7c15ull);
  h = mix(h ^ (stream + 0x9e3779b97f4a7c15ull));
  h = mix(h ^ a);
  h = mix(h ^ b);
  h = mix(h ^ c);
  return h;
}

/// Probability -> 64-bit hash threshold (draw < threshold means "fault").
std::uint64_t threshold_of(double p) noexcept {
  if (p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return FaultInjector::kNever;  // every draw is below 2^64 - 1... almost
  }
  return static_cast<std::uint64_t>(p * 18446744073709551616.0);
}

// Stream tags of the independent fault streams.
constexpr std::uint64_t kStreamMigration = 1;
constexpr std::uint64_t kStreamRemote = 2;
constexpr std::uint64_t kStreamPacket = 3;
constexpr std::uint64_t kStreamStall = 4;
constexpr std::uint64_t kStreamMttf = 5;

}  // namespace

std::string to_string(const FaultSpec& spec) {
  const FaultSpec defaults{};
  std::string out;
  auto add = [&out](const std::string& clause) {
    if (!out.empty()) {
      out += ',';
    }
    out += clause;
  };
  if (spec.drop_rate > 0.0) {
    add("drop=" + format_double(spec.drop_rate));
  }
  if (spec.stall_rate > 0.0) {
    add("stall=" + format_double(spec.stall_rate) + ":" +
        std::to_string(spec.stall_cycles));
  }
  for (const CoreFailure& k : spec.kills) {
    add("kill=" + std::to_string(k.core) + "@" + std::to_string(k.at));
  }
  if (spec.mttf_cycles != 0) {
    add("mttf=" + std::to_string(spec.mttf_cycles));
  }
  if (spec.seed != defaults.seed) {
    add("seed=" + std::to_string(spec.seed));
  }
  if (spec.max_retries != defaults.max_retries) {
    add("retries=" + std::to_string(spec.max_retries));
  }
  if (spec.retry_timeout != defaults.retry_timeout) {
    add("timeout=" + std::to_string(spec.retry_timeout));
  }
  return out.empty() ? "none" : out;
}

std::optional<FaultSpec> parse_fault_spec(std::string_view text) noexcept {
  FaultSpec spec;
  if (text == "none" || text.empty()) {
    return spec;
  }
  while (!text.empty()) {
    const std::size_t comma = text.find(',');
    std::string_view clause = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      return std::nullopt;
    }
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    if (key == "drop") {
      if (!parse_double(value, spec.drop_rate) || spec.drop_rate < 0.0 ||
          spec.drop_rate > 1.0) {
        return std::nullopt;
      }
    } else if (key == "stall") {
      const std::size_t colon = value.find(':');
      if (colon == std::string_view::npos) {
        return std::nullopt;
      }
      std::uint64_t cycles = 0;
      if (!parse_double(value.substr(0, colon), spec.stall_rate) ||
          spec.stall_rate < 0.0 || spec.stall_rate > 1.0 ||
          !parse_u64(value.substr(colon + 1), cycles) || cycles == 0 ||
          cycles > ~std::uint32_t{0}) {
        return std::nullopt;
      }
      spec.stall_cycles = static_cast<std::uint32_t>(cycles);
    } else if (key == "kill") {
      const std::size_t at_sep = value.find('@');
      if (at_sep == std::string_view::npos) {
        return std::nullopt;
      }
      std::uint64_t core = 0;
      CoreFailure k;
      if (!parse_u64(value.substr(0, at_sep), core) ||
          core > 0x7fffffffull || !parse_u64(value.substr(at_sep + 1), k.at)) {
        return std::nullopt;
      }
      k.core = static_cast<CoreId>(core);
      spec.kills.push_back(k);
    } else if (key == "mttf") {
      if (!parse_u64(value, spec.mttf_cycles) || spec.mttf_cycles == 0) {
        return std::nullopt;
      }
    } else if (key == "seed") {
      if (!parse_u64(value, spec.seed)) {
        return std::nullopt;
      }
    } else if (key == "retries") {
      std::uint64_t n = 0;
      if (!parse_u64(value, n) || n > 64) {
        return std::nullopt;
      }
      spec.max_retries = static_cast<std::uint32_t>(n);
    } else if (key == "timeout") {
      if (!parse_u64(value, spec.retry_timeout) ||
          spec.retry_timeout == 0) {
        return std::nullopt;
      }
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

FaultSpec fault_spec_from_string(std::string_view text) {
  const auto spec = parse_fault_spec(text);
  if (!spec) {
    fail_unknown("fault spec", text,
                 std::vector<std::string_view>{
                     "none", "drop=<p>", "stall=<p>:<cycles>",
                     "kill=<core>@<at>", "mttf=<cycles>", "seed=<n>",
                     "retries=<n>", "timeout=<cycles>"});
  }
  return *spec;
}

const char* to_string(FaultEventKind kind) noexcept {
  switch (kind) {
    case FaultEventKind::kPacketDrop:
      return "packet_drop";
    case FaultEventKind::kMigrationRetry:
      return "migration_retry";
    case FaultEventKind::kMigrationDegraded:
      return "migration_degraded";
    case FaultEventKind::kMigrationStalled:
      return "migration_stalled";
    case FaultEventKind::kRemoteRetry:
      return "remote_retry";
    case FaultEventKind::kCoreStall:
      return "core_stall";
    case FaultEventKind::kCoreFailure:
      return "core_failure";
    case FaultEventKind::kEvacuation:
      return "evacuation";
    case FaultEventKind::kRenative:
      return "renative";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultSpec& spec, std::int32_t num_cores)
    : spec_(spec),
      num_cores_(num_cores),
      live_(num_cores),
      drop_threshold_(threshold_of(spec.drop_rate)),
      stall_threshold_(threshold_of(spec.stall_rate)) {
  EM2_ASSERT(num_cores >= 1, "fault injection needs at least one core");
  const auto n = static_cast<std::size_t>(num_cores);
  fail_at_.assign(n, kNever);
  failed_.assign(n, 0);
  stall_seen_.assign(n, 0);
  remap_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    remap_[c] = static_cast<CoreId>(c);
  }

  // Explicit kills: validate, keep the earliest time per core.  These are
  // user-supplied configuration, so bad values throw a catchable
  // exception (the run_matrix error-capture path records it per point).
  for (const CoreFailure& k : spec.kills) {
    if (k.core < 0 || k.core >= num_cores) {
      throw std::invalid_argument(
          "FaultSpec: kill core " + std::to_string(k.core) +
          " outside the mesh (" + std::to_string(num_cores) + " cores)");
    }
    auto& at = fail_at_[static_cast<std::size_t>(k.core)];
    at = std::min(at, k.at);
  }
  std::size_t explicit_kills = 0;
  for (const std::uint64_t at : fail_at_) {
    explicit_kills += at != kNever;
  }
  if (explicit_kills >= n) {
    throw std::invalid_argument(
        "FaultSpec: kills cover every core; at least one must survive");
  }

  // Random failures: one exponential(mttf) draw per still-surviving core,
  // keyed on (seed, core) alone — scheduling-order independent.
  if (spec.mttf_cycles != 0) {
    for (std::size_t c = 0; c < n; ++c) {
      if (fail_at_[c] != kNever) {
        continue;
      }
      const std::uint64_t h =
          draw(spec_.seed, kStreamMttf, c, 0, 0) >> 11;
      // u in (0, 1]: never log(0).
      const double u =
          (static_cast<double>(h) + 1.0) * 0x1.0p-53;
      const double t =
          -std::log(u) * static_cast<double>(spec.mttf_cycles);
      if (t < 9e18) {
        fail_at_[c] = static_cast<std::uint64_t>(t);
      }
    }
  }

  // Failure schedule in (time, core) order, capped so the last core
  // standing never fails (a DSM with zero homes is not a scenario, it is
  // an end state): failures past the cap are cancelled.
  for (std::size_t c = 0; c < n; ++c) {
    if (fail_at_[c] != kNever) {
      schedule_.push_back(
          CoreFailure{static_cast<CoreId>(c), fail_at_[c]});
    }
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const CoreFailure& a, const CoreFailure& b) {
              return a.at != b.at ? a.at < b.at : a.core < b.core;
            });
  if (schedule_.size() >= n) {
    for (std::size_t i = n - 1; i < schedule_.size(); ++i) {
      fail_at_[static_cast<std::size_t>(schedule_[i].core)] = kNever;
    }
    schedule_.resize(n - 1);
  }
}

FaultInjector::AttemptPlan FaultInjector::plan(
    std::uint64_t stream, ThreadId t, std::vector<std::uint64_t>& seq) {
  AttemptPlan out;
  if (drop_threshold_ == 0) {
    return out;
  }
  const auto ti = static_cast<std::size_t>(t);
  if (ti >= seq.size()) {
    seq.resize(ti + 1, 0);
  }
  const std::uint64_t s = seq[ti]++;
  for (std::uint32_t attempt = 0; attempt <= spec_.max_retries;
       ++attempt) {
    if (draw(spec_.seed, stream, static_cast<std::uint64_t>(t), s,
             attempt) >= drop_threshold_) {
      return out;  // this attempt got through
    }
    ++out.failed_attempts;
  }
  out.exhausted = true;
  return out;
}

FaultInjector::AttemptPlan FaultInjector::plan_migration(ThreadId t) {
  return plan(kStreamMigration, t, mig_seq_);
}

FaultInjector::AttemptPlan FaultInjector::plan_remote(ThreadId t) {
  return plan(kStreamRemote, t, rem_seq_);
}

bool FaultInjector::drop_packet(std::uint64_t id,
                                std::uint32_t attempt) const noexcept {
  return drop_threshold_ != 0 &&
         draw(spec_.seed, kStreamPacket, id, attempt, 0) < drop_threshold_;
}

bool FaultInjector::core_stalled(CoreId core, Cycle cycle) {
  if (stall_threshold_ == 0) {
    return false;
  }
  const auto window =
      static_cast<std::uint64_t>(cycle) / spec_.stall_cycles;
  if (draw(spec_.seed, kStreamStall, static_cast<std::uint64_t>(core),
           window, 0) >= stall_threshold_) {
    return false;
  }
  auto& seen = stall_seen_[static_cast<std::size_t>(core)];
  if (seen != window + 1) {
    seen = window + 1;
    ++stats_.injected;
    ++stats_.core_stalls;
    record(FaultEvent{FaultEventKind::kCoreStall,
                      static_cast<std::uint64_t>(cycle), kNoThread, core,
                      0});
  }
  return true;
}

std::vector<CoreId> FaultInjector::take_due_failures(std::uint64_t now) {
  std::vector<CoreId> due;
  while (sched_pos_ < schedule_.size() &&
         schedule_[sched_pos_].at <= now) {
    due.push_back(schedule_[sched_pos_].core);
    ++sched_pos_;
  }
  return due;
}

void FaultInjector::mark_failed(CoreId core) {
  auto& f = failed_[static_cast<std::size_t>(core)];
  if (f) {
    return;
  }
  f = 1;
  --live_;
  EM2_ASSERT(live_ >= 1, "the failure schedule is capped below num_cores");
  // Rebuild the whole remap table (failures are rare; lookups are hot):
  // every failed core chases to the next live core in wrap-around order.
  const auto n = static_cast<std::size_t>(num_cores_);
  for (std::size_t c = 0; c < n; ++c) {
    CoreId r = static_cast<CoreId>(c);
    while (failed_[static_cast<std::size_t>(r)]) {
      r = static_cast<CoreId>((static_cast<std::size_t>(r) + 1) % n);
    }
    remap_[c] = r;
  }
}

}  // namespace em2
