// The closed vocabulary of a run: memory architecture, core scheduler,
// and run mode, with ONE string<->enum mapping for each.
//
// Everything that names an architecture — RunSpec, ExecParams, bench
// --arch= flags, report labels — goes through to_string/parse_* here, so
// "em2-ra" means the same thing everywhere and a typo fails fast instead
// of silently selecting a default.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace em2 {

/// Which memory architecture serves the threads.
enum class MemArch : std::uint8_t {
  kEm2 = 0,
  kEm2Ra = 1,
  kCc = 2,
};

/// Which scheduler drives the cores of the execution-driven system (see
/// sim/exec_system.hpp).
enum class SchedulerKind : std::uint8_t {
  kEventDriven = 0,
  kScan = 1,
};

/// What a System::run actually runs: the trace-driven protocol engines,
/// the execution-driven multicore (real register-ISA programs), or the
/// paper's per-thread DP optimum over the analytical model.
enum class RunMode : std::uint8_t {
  kTrace = 0,
  kExec = 1,
  kOptimal = 2,
};

/// How the analytic cost tables account for NoC contention (see
/// noc/contention.hpp): kNone is the paper's uncontended mesh; kMeasured
/// runs a short cycle-level calibration replay first and corrects the
/// tables from measured per-vnet link utilization; kEstimated derives the
/// offered load analytically (no cycle-level run).
enum class ContentionMode : std::uint8_t {
  kNone = 0,
  kMeasured = 1,
  kEstimated = 2,
};

/// Canonical names: "em2" | "em2-ra" | "cc".
const char* to_string(MemArch arch) noexcept;
/// Canonical names: "event" | "scan".
const char* to_string(SchedulerKind kind) noexcept;
/// Canonical names: "trace" | "exec" | "optimal".
const char* to_string(RunMode mode) noexcept;
/// Canonical names: "none" | "measured" | "estimated".
const char* to_string(ContentionMode mode) noexcept;

/// Parses a canonical name or accepted alias ("em2ra", "cc-msi", "msi");
/// nullopt for anything else.
std::optional<MemArch> parse_mem_arch(std::string_view name) noexcept;
/// Parses "event" | "event-driven" | "scan".
std::optional<SchedulerKind> parse_scheduler_kind(
    std::string_view name) noexcept;
/// Parses "trace" | "exec" | "execution" | "optimal".
std::optional<RunMode> parse_run_mode(std::string_view name) noexcept;
/// Parses "none" | "uncontended" | "measured" | "estimated".
std::optional<ContentionMode> parse_contention_mode(
    std::string_view name) noexcept;

/// Parses a contention-mode name or throws UnknownNameError — the
/// fail-fast entry benches and tools use for --contention= flags.
ContentionMode contention_mode_from_name(std::string_view name);

/// Canonical name lists, for CLI help and fail-fast error messages.
std::vector<std::string_view> mem_arch_names();
std::vector<std::string_view> scheduler_kind_names();
std::vector<std::string_view> run_mode_names();
std::vector<std::string_view> contention_mode_names();

}  // namespace em2
