// Execution-driven multicore simulation: register-ISA threads running on
// cores that multiplex hardware contexts at instruction granularity, over
// a pluggable memory architecture (EM2, EM2-RA, or directory CC).
//
// This is the Graphite-substitute at execution (not trace) level: cycles
// advance globally; each cycle every core issues one instruction from one
// ready resident context ("each core may be capable of multiplexing
// execution among several contexts at instruction granularity"); memory
// operations stall the issuing context for the protocol latency, and under
// EM2 the context physically moves between cores' resident sets —
// including eviction re-stalls when a migration displaces a guest.
//
// All loads/stores are checked against the sequential-consistency witness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arch/reg_isa.hpp"
#include "coherence/directory.hpp"
#include "em2/consistency.hpp"
#include "em2/machine.hpp"
#include "em2ra/hybrid_machine.hpp"
#include "em2ra/policy.hpp"
#include "geom/mesh.hpp"
#include "noc/cost_model.hpp"
#include "placement/placement.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace em2 {

/// Which memory architecture serves the threads.
enum class MemArch : std::uint8_t {
  kEm2 = 0,
  kEm2Ra = 1,
  kCc = 2,
};

const char* to_string(MemArch arch) noexcept;

/// Execution-system configuration.
struct ExecParams {
  MemArch arch = MemArch::kEm2;
  Em2Params em2{};
  DirCcParams cc{};
  /// EM2-RA decision policy spec (see make_policy); ignored otherwise.
  std::string ra_policy = "distance:4";
  std::uint32_t block_bytes = 64;
};

/// End-of-run report.
struct ExecReport {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  CounterSet counters;
  bool consistent = false;
  std::vector<ConsistencyViolation> violations;
  /// Per-thread completion time (cycle of HALT retirement).
  std::vector<Cycle> finish_cycle;
};

/// The execution-driven system.
class ExecSystem {
 public:
  /// `placement` maps blocks to homes and must outlive the system.
  ExecSystem(const Mesh& mesh, const CostModel& cost,
             const ExecParams& params, const Placement& placement);
  ~ExecSystem();

  /// Adds a thread running `program`, native to `native`.
  ThreadId add_thread(RProgram program, CoreId native);

  /// Pre-initializes functional memory (registered with the checker).
  void poke(Addr addr, std::uint32_t value);
  std::uint32_t peek(Addr addr) const { return memory_.load(addr); }

  /// Runs until all threads halt or `max_cycles` pass.
  ExecReport run(Cycle max_cycles);

 private:
  struct Thread {
    std::unique_ptr<RegInterpreter> interp;
    ExecutionContext ctx;
    Cycle ready_at = 0;
    bool halted = false;
  };

  CoreId home_of(Addr addr) const;
  CoreId thread_location(ThreadId t) const;
  /// Serves one memory access for thread `t`; returns the stall latency.
  Cost serve_access(ThreadId t, const PendingAccess& mem);

  Mesh mesh_;
  CostModel cost_;
  ExecParams params_;
  const Placement& placement_;
  std::uint32_t block_shift_;

  // Exactly one of these backs the memory system, per params_.arch.
  std::unique_ptr<DecisionPolicy> ra_policy_;
  std::unique_ptr<Em2Machine> em2_;        // also set for kEm2Ra (hybrid)
  HybridMachine* hybrid_ = nullptr;        // non-owning view when kEm2Ra
  std::unique_ptr<DirectoryCC> cc_;

  std::vector<Thread> threads_;
  std::vector<std::uint32_t> rr_;  // per-core round-robin cursor
  FunctionalMemory memory_;
  ConsistencyChecker checker_;
  ExecReport report_;
  Cycle now_ = 0;
  bool started_ = false;
};

}  // namespace em2
