// Execution-driven multicore simulation: register-ISA threads running on
// cores that multiplex hardware contexts at instruction granularity, over
// a pluggable memory architecture (EM2, EM2-RA, or directory CC).
//
// This is the Graphite-substitute at execution (not trace) level: cycles
// advance globally; each cycle every core issues one instruction from one
// ready resident context ("each core may be capable of multiplexing
// execution among several contexts at instruction granularity"); memory
// operations stall the issuing context for the protocol latency, and under
// EM2 the context physically moves between cores' resident sets —
// including eviction re-stalls when a migration displaces a guest.
//
// Two schedulers produce bit-identical reports (enforced by
// tests/sim/test_exec_equivalence.cpp):
//
//   kEventDriven (default)  Per-core resident-ready queues maintained in
//       O(1) by a ThreadMoveObserver hook on the EM2/EM2-RA machines
//       (arrival/departure updates the queue the moment it happens; CC
//       threads are pinned, so their queues are static), a min-heap of
//       wakeup times so fully-stalled stretches are skipped in one jump,
//       and a dense min-heap of ready cores so a cycle costs O(issuing
//       cores x log) — independent of mesh size, unlike the former
//       ready-core bitmap whose walk was O(cores/64) even when a single
//       core issued.  This is what makes 1000-core runs feasible.
//   kScan                   The reference scheduler: every cycle, every
//       core probes every thread (round-robin).  Kept as the executable
//       specification the event-driven scheduler is diffed against.
//
// All loads/stores are checked against the sequential-consistency witness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "arch/reg_isa.hpp"
#include "coherence/directory.hpp"
#include "em2/consistency.hpp"
#include "em2/machine.hpp"
#include "em2ra/hybrid_machine.hpp"
#include "em2ra/policy.hpp"
#include "geom/mesh.hpp"
#include "noc/cost_model.hpp"
#include "placement/placement.hpp"
#include "sim/faults.hpp"
#include "sim/modes.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace em2 {

/// Execution-system configuration.
struct ExecParams {
  MemArch arch = MemArch::kEm2;
  SchedulerKind scheduler = SchedulerKind::kEventDriven;
  Em2Params em2{};
  DirCcParams cc{};
  /// EM2-RA decision policy spec (see StandardPolicy::make; "custom:"
  /// prefix forces the virtual escape hatch); ignored otherwise.  An
  /// unknown spec throws UnknownNameError when run() builds the machines.
  std::string ra_policy = "distance:4";
  std::uint32_t block_bytes = 64;
  /// This run's fault injector (nullable; must outlive the system).  Null
  /// keeps every path bit-identical to the fault-free build.  EM2/EM2-RA
  /// only — the CC fault model is future work.
  FaultInjector* faults = nullptr;
  /// Liveness watchdog: if no instruction retires for this many cycles,
  /// the run terminates with a structured diagnosis instead of spinning
  /// (or, in event mode, jumping) toward max_cycles.  0 disables.
  Cycle watchdog_cycles = 0;
  /// Host-parallel execution: the mesh is partitioned into this many
  /// contiguous shards, each advanced by (up to) one host thread.
  /// 1 = the sequential engine; 0 = auto (the shared thread budget,
  /// clamped to the core count); >1 requires kEventDriven.  Worker
  /// threads are leased from the process thread budget — a run that gets
  /// fewer (or zero) helpers still simulates the configured shard count
  /// and produces the identical report.
  std::uint32_t shards = 1;
  /// Relaxed-synchronization quantum in cycles.  0 (the default) keeps
  /// the sharded run BIT-IDENTICAL to the sequential event scheduler
  /// (speculate-in-parallel, commit-in-order).  >0 lets each shard run
  /// ahead up to `skew` cycles between barriers, with cross-shard
  /// migrations, evictions, and remote accesses delivered at the next
  /// barrier — deterministic for a fixed (shards, skew), but a different
  /// (still protocol-valid) interleaving than the sequential engine.
  /// Requires EM2/EM2-RA (no CC), no fault injection, no modelled
  /// caches, and a shard-partitionable decision policy (every standard
  /// scheme qualifies: stateless kinds are copied per shard; history
  /// state rides with its thread across shard crossings; cost-estimate
  /// shards log run-length samples locally and fold them into one EWMA
  /// at each barrier, in shard-index order); ignored when shards <= 1.
  Cycle skew = 0;
};

/// End-of-run report.
struct ExecReport {
  Cycle cycles = 0;
  std::uint64_t instructions = 0;
  CounterSet counters;
  /// True iff the checker saw no violation AND every thread halted.  A
  /// run that hit `max_cycles` with clean memory semantics is NOT a
  /// consistency violation — check `timed_out` to tell them apart.
  bool consistent = false;
  /// True iff `max_cycles` elapsed with at least one thread still live.
  bool timed_out = false;
  /// The liveness watchdog terminated the run; `diagnosis` says why and
  /// what the scheduler saw.  A watchdog run is also `timed_out`.
  bool watchdog_fired = false;
  std::string diagnosis;
  /// Post-run thread-conservation invariant (always checked on EM2
  /// architectures; trivially true on CC).
  bool conservation_ok = true;
  std::vector<ConsistencyViolation> violations;
  /// Per-thread completion time (cycle of HALT retirement).
  std::vector<Cycle> finish_cycle;
};

/// The execution-driven system.
class ExecSystem final : private ThreadMoveObserver {
 public:
  /// `placement` maps blocks to homes and must outlive the system.
  ExecSystem(const Mesh& mesh, const CostModel& cost,
             const ExecParams& params, const Placement& placement);
  ~ExecSystem();

  /// Adds a thread running `program`, native to `native`.
  ThreadId add_thread(RProgram program, CoreId native);

  /// Pre-initializes functional memory (registered with the checker).
  void poke(Addr addr, std::uint32_t value);
  std::uint32_t peek(Addr addr) const { return memory_.load(addr); }

  /// Resolved EM2-RA decision-policy name (e.g. "history:2"); empty
  /// before run() built the machines or when arch != kEm2Ra.  Saves
  /// callers re-parsing ExecParams::ra_policy just to label reports.
  std::string ra_policy_name() const {
    return ra_policy_ ? ra_policy_->name() : std::string();
  }

  /// Runs until all threads halt or `max_cycles` pass.
  ///
  /// Fresh-run contract: an ExecSystem is single-shot — `run()` may be
  /// invoked at most once, because the interpreters, protocol machines,
  /// and checker all carry state the run consumed.  A second call is a
  /// hard EM2_ASSERT failure (it used to silently continue from the
  /// previous cycle count with stale machine counters).  Build a new
  /// system to re-run a configuration.
  ExecReport run(Cycle max_cycles);

 private:
  struct Thread {
    std::unique_ptr<RegInterpreter> interp;
    ExecutionContext ctx;
    Cycle ready_at = 0;
    bool halted = false;
  };

  /// Pending wakeup of a stalled thread.  Entries are never removed when a
  /// stall is extended (e.g. an eviction re-stalls a waiting victim);
  /// instead a later entry is pushed and stale ones are discarded on pop
  /// (valid iff the thread is live, not already ready, and its current
  /// `ready_at` equals the entry time — `ready_at` never decreases).
  struct Wakeup {
    Cycle at;
    ThreadId thread;
  };
  struct WakeupAfter {
    bool operator()(const Wakeup& a, const Wakeup& b) const noexcept {
      return a.at > b.at;
    }
  };

  CoreId home_of(Addr addr) const;
  CoreId thread_location(ThreadId t) const;
  /// Serves one memory access for thread `t`; returns the stall latency.
  Cost serve_access(ThreadId t, const PendingAccess& mem);

  /// ThreadMoveObserver: keeps the resident queues in sync with the
  /// machine's thread locations (registered only in kEventDriven mode).
  void on_thread_moved(ThreadId t, CoreId from, CoreId to) override;

  /// Instantiates the protocol machine for params_.arch.
  void init_machines();
  /// Issues one instruction from `chosen` (shared by both schedulers).
  void step_thread(ThreadId chosen);
  /// Sets `t`'s ready time to `when` (>= now_) and, in event mode, moves
  /// it between the ready set and the wakeup heap accordingly.
  void set_ready_at(ThreadId t, Cycle when);
  void mark_ready(ThreadId t);
  void mark_unready(ThreadId t);
  /// Maintain the per-core ready count + dense ready-core heap pair (the
  /// only two places that representation is known).
  void core_gains_ready(CoreId core);
  void core_loses_ready(CoreId core);
  /// First ready resident of `core` in round-robin order from rr_[core].
  ThreadId select_ready_resident(CoreId core) const;

  /// Fails every core whose scheduled failure time is <= now_ and
  /// re-stalls the evacuated threads (fault injection only).
  void process_due_failures();
  /// Terminates the run with a structured liveness diagnosis.
  void fire_watchdog(const char* reason);
  /// Fault-injection cycle-top bookkeeping shared by both schedulers:
  /// stamps the injector clock and processes due core failures.
  void fault_tick() {
    if (faults_ != nullptr) {
      faults_->set_now(now_);
      if (faults_->next_failure_at() <= now_) {
        process_due_failures();
      }
    }
  }

  void run_scan(Cycle max_cycles);
  void run_event(Cycle max_cycles);

  // Sharded execution (sim/exec_parallel.cpp).  Exact mode (skew=0)
  // speculates instruction steps across a worker pool and commits them
  // serially in the sequential scheduler's order — bit-identical by
  // construction.  Relaxed mode (skew>0) gives each shard its own
  // machine/memory/checker partition and exchanges cross-shard traffic at
  // quantum barriers.
  /// Builds the event-scheduler residency/ready structures (shared by
  /// run_event and the exact-mode parallel walk).
  void init_event_structures();
  /// Everything step_thread does after the interpreter step itself —
  /// lets the exact-mode engine commit a speculated StepResult.
  void finish_step(ThreadId chosen, const StepResult& r);
  /// Shard count this run resolves to (params_.shards, with 0 = auto).
  std::uint32_t resolve_shards() const;
  void run_event_parallel(Cycle max_cycles, std::uint32_t nshards);
  ExecReport run_relaxed(Cycle max_cycles, std::uint32_t nshards);
  friend struct RelaxedEngine;

  Mesh mesh_;
  CostModel cost_;
  ExecParams params_;
  const Placement& placement_;
  std::uint32_t block_shift_;

  // Exactly one of these backs the memory system, per params_.arch.
  // The sealed policy is visited per access (a switch over the concrete
  // scheme — no virtual call unless the spec chose the kCustom hatch).
  std::optional<StandardPolicy> ra_policy_;
  std::unique_ptr<Em2Machine> em2_;        // also set for kEm2Ra (hybrid)
  HybridMachine* hybrid_ = nullptr;        // non-owning view when kEm2Ra
  std::unique_ptr<DirectoryCC> cc_;

  std::vector<Thread> threads_;
  std::vector<std::uint32_t> rr_;  // per-core round-robin cursor
  FunctionalMemory memory_;
  /// Replay log of poke() calls: relaxed mode seeds each shard's memory
  /// partition and consistency checker from it.
  std::vector<std::pair<Addr, std::uint32_t>> poke_log_;
  ConsistencyChecker checker_;
  ExecReport report_;
  Cycle now_ = 0;
  bool started_ = false;
  std::size_t halted_count_ = 0;
  FaultInjector* faults_ = nullptr;  // = params_.faults during run()
  /// Cycle of the most recent instruction retirement (watchdog anchor).
  Cycle last_progress_ = 0;
  bool watchdog_fired_ = false;

  // Event-driven scheduler state (live only during run() in kEventDriven
  // mode; empty otherwise).  Residency is a mirror of the machines' thread
  // locations, updated by on_thread_moved — never rediscovered by scans.
  bool event_mode_ = false;
  std::vector<std::vector<ThreadId>> residents_;  // per core, sorted by id
  std::vector<std::uint32_t> ready_count_;  // ready residents per core
  std::vector<char> is_ready_;              // per thread
  std::vector<CoreId> core_of_;             // per thread, mirrors location
  std::size_t num_ready_ = 0;
  std::priority_queue<Wakeup, std::vector<Wakeup>, WakeupAfter> wakeups_;
  // Dense ready-core list: a lazy min-heap holding every core that *may*
  // have a ready resident, at most one entry per core (queued_).  Entries
  // whose ready_count_ dropped to 0 are discarded on pop; cores that are
  // stepped and stay ready, or that become ready at-or-below the cycle's
  // cursor, are re-queued for the next cycle via deferred_.  Cycle cost is
  // O(ready cores x log), independent of mesh size.
  std::priority_queue<CoreId, std::vector<CoreId>, std::greater<CoreId>>
      ready_cores_;
  std::vector<char> queued_;       // per core: exactly-one-heap-entry guard
  std::vector<CoreId> deferred_;   // cores to re-queue after the cycle walk
};

}  // namespace em2
