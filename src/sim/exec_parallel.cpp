// Host-parallel execution of a single simulation run (ExecParams::shards).
//
// Two engines live here, selected by ExecParams::skew:
//
//   Exact mode (skew == 0, run_event_parallel)
//     The mesh's ready cores are drained once per cycle into an ascending
//     issue list; a worker pool SPECULATES each core's instruction step on
//     a private context copy (RegInterpreter::step is const and writes
//     only the context it is given), then a serial commit walk replays the
//     sequential event scheduler's exact pop order, validating each
//     speculation by re-running the round-robin selection.  A mismatch
//     (an earlier commit changed readiness or residency) falls back to a
//     serial step.  The result is BIT-IDENTICAL to run_event by
//     construction — the commit walk performs the same operations in the
//     same order; speculation only pre-computes pure values.
//
//   Relaxed mode (skew > 0, RelaxedEngine)
//     The mesh is partitioned into contiguous shards, each with its own
//     protocol machine, functional-memory partition, consistency checker,
//     decision policy, and event scheduler.  Shards advance independently
//     up to a quantum boundary; cross-shard traffic (migrations, eviction
//     transfers, remote accesses) queues at the shard edge and is
//     delivered at the barrier in deterministic (cycle, thread) order.
//     Deterministic for a fixed (shards, skew) and independent of how
//     many worker threads the budget grants — but a different (still
//     protocol-valid) interleaving than the sequential engine.
//
// Worker threads are leased from the shared process budget
// (util/thread_budget.hpp): a run that gets fewer (or zero) helpers
// simulates the same configuration on fewer threads and produces the
// identical report.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <thread>
#include <utility>
#include <vector>

#include "sim/exec_system.hpp"
#include "util/assert.hpp"
#include "util/thread_budget.hpp"

namespace em2 {

namespace {

/// A quantum-granularity fork/join pool.  Tasks are microseconds long and
/// fire thousands of times per run, so helpers spin (with yield) on an
/// epoch counter instead of blocking on a condition variable; the
/// release/acquire pair on `epoch_` publishes the task and its inputs, and
/// the acq_rel `done_` counter publishes the helpers' writes back to the
/// coordinator.
class SpinPool {
 public:
  explicit SpinPool(std::size_t helpers) {
    threads_.reserve(helpers);
    for (std::size_t i = 0; i < helpers; ++i) {
      threads_.emplace_back([this, i] { helper_loop(i + 1); });
    }
  }

  ~SpinPool() {
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    for (std::thread& t : threads_) {
      t.join();
    }
  }

  SpinPool(const SpinPool&) = delete;
  SpinPool& operator=(const SpinPool&) = delete;

  /// Participants, including the calling thread.
  std::size_t parts() const noexcept { return threads_.size() + 1; }

  /// Runs task(part, parts()) on every participant; the caller takes part
  /// 0.  Returns when every part finished.
  void run(const std::function<void(std::size_t, std::size_t)>& task) {
    if (threads_.empty()) {
      task(0, 1);
      return;
    }
    task_ = &task;
    done_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);
    task(0, parts());
    while (done_.load(std::memory_order_acquire) != threads_.size()) {
      std::this_thread::yield();
    }
    task_ = nullptr;
  }

 private:
  void helper_loop(std::size_t part) {
    std::uint64_t seen = 0;
    for (;;) {
      while (epoch_.load(std::memory_order_acquire) == seen) {
        std::this_thread::yield();
      }
      ++seen;
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      (*task_)(part, parts());
      done_.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> done_{0};
  std::atomic<bool> stop_{false};
  const std::function<void(std::size_t, std::size_t)>* task_ = nullptr;
  std::vector<std::thread> threads_;
};

/// One speculated instruction step (exact mode).
struct Spec {
  CoreId core = kNoCore;
  ThreadId chosen = kNoThread;
  StepResult res{};
  ExecutionContext ctx{};
};

/// Below this many issuing cores the fork/join round trip costs more than
/// the interpreter steps it parallelizes; speculate inline instead (the
/// results are identical either way — only wall-clock changes).
constexpr std::size_t kSpeculateInlineCutoff = 16;

constexpr Cycle kFarFuture = std::numeric_limits<Cycle>::max();

}  // namespace

// ---------------------------------------------------------------------------
// Exact mode: speculate in parallel, commit in sequential order.

void ExecSystem::run_event_parallel(Cycle max_cycles, std::uint32_t nshards) {
  const std::size_t n_threads = threads_.size();
  init_event_structures();

  const ThreadBudgetLease lease(nshards - 1);
  SpinPool pool(lease.granted());

  std::vector<CoreId> issue;
  std::vector<Spec> specs;

  while (halted_count_ < n_threads) {
    // --- Cycle top: verbatim from run_event (serial). ---
    if (now_ >= max_cycles) {
      break;
    }
    if (num_ready_ == 0) {
      while (!wakeups_.empty()) {
        const Wakeup& w = wakeups_.top();
        const Thread& th = threads_[static_cast<std::size_t>(w.thread)];
        if (!th.halted && th.ready_at == w.at) {
          break;
        }
        wakeups_.pop();
      }
      std::uint64_t wake = wakeups_.empty()
                               ? FaultInjector::kNever
                               : static_cast<std::uint64_t>(
                                     wakeups_.top().at);
      if (faults_ != nullptr) {
        wake = std::min(wake, faults_->next_failure_at());
      }
      if (params_.watchdog_cycles > 0) {
        wake = std::min(wake, static_cast<std::uint64_t>(
                                  last_progress_ + params_.watchdog_cycles));
      }
      EM2_ASSERT(wake != FaultInjector::kNever,
                 "live threads but no pending wakeup: scheduler would hang");
      if (wake > static_cast<std::uint64_t>(max_cycles)) {
        now_ = max_cycles;
        break;
      }
      now_ = static_cast<Cycle>(wake);
    } else {
      ++now_;
    }
    if (params_.watchdog_cycles > 0 &&
        now_ - last_progress_ >= params_.watchdog_cycles) {
      fire_watchdog("no instruction retired within the watchdog window");
      break;
    }
    fault_tick();

    while (!wakeups_.empty() && wakeups_.top().at <= now_) {
      const Wakeup w = wakeups_.top();
      wakeups_.pop();
      const Thread& th = threads_[static_cast<std::size_t>(w.thread)];
      if (th.halted || is_ready_[static_cast<std::size_t>(w.thread)] ||
          th.ready_at != w.at) {
        continue;
      }
      mark_ready(w.thread);
    }

    // --- Pre-drain: the cycle's issuing cores, in ascending order. ---
    // queued_ stays 1 for every listed core until its commit moment, so a
    // mid-commit core_gains_ready cannot push a duplicate heap entry — the
    // commit walk's merged order is exactly the sequential pop order.
    issue.clear();
    while (!ready_cores_.empty()) {
      const CoreId core = ready_cores_.top();
      ready_cores_.pop();
      const auto c = static_cast<std::size_t>(core);
      if (ready_count_[c] == 0) {
        queued_[c] = 0;  // stale: went unready since it was queued
        continue;
      }
      issue.push_back(core);
    }

    // --- Phase A: speculate every listed core's step in parallel. ---
    // Pure reads of scheduler state plus a const interpreter step on a
    // private context copy; fault stall draws are NOT consulted here (they
    // are accounting-bearing and belong to the commit walk).
    specs.resize(issue.size());
    const auto speculate = [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        Spec& sp = specs[i];
        sp.core = issue[i];
        sp.chosen = select_ready_resident(sp.core);
        EM2_ASSERT(sp.chosen != kNoThread,
                   "ready-core heap out of sync with resident queues");
        const Thread& th = threads_[static_cast<std::size_t>(sp.chosen)];
        sp.ctx = th.ctx;
        sp.res = th.interp->step(sp.ctx);
      }
    };
    if (issue.size() < kSpeculateInlineCutoff || pool.parts() == 1) {
      speculate(0, issue.size());
    } else {
      pool.run([&](std::size_t part, std::size_t nparts) {
        const std::size_t lo = issue.size() * part / nparts;
        const std::size_t hi = issue.size() * (part + 1) / nparts;
        speculate(lo, hi);
      });
    }

    // --- Phase B: serial commit walk in sequential pop order. ---
    // Merge the pre-drained list with entries pushed into the heap by the
    // commits themselves (a migration landing on a later core this cycle).
    // A pending listed core can never also be in the heap (queued_ guard),
    // so "heap top < next listed core" reproduces the exact order the
    // sequential walk would pop.
    CoreId cursor = -1;
    deferred_.clear();
    std::size_t si = 0;
    while (si < specs.size() || !ready_cores_.empty()) {
      const bool take_heap =
          !ready_cores_.empty() &&
          (si >= specs.size() || ready_cores_.top() < specs[si].core);
      CoreId core;
      const Spec* sp = nullptr;
      if (take_heap) {
        core = ready_cores_.top();
        ready_cores_.pop();
      } else {
        sp = &specs[si++];
        core = sp->core;
      }
      const auto c = static_cast<std::size_t>(core);
      queued_[c] = 0;
      if (ready_count_[c] == 0) {
        continue;  // went unready under an earlier commit
      }
      if (core <= cursor) {
        deferred_.push_back(core);
        continue;
      }
      cursor = core;
      if (faults_ != nullptr && faults_->core_stalled(core, now_)) {
        deferred_.push_back(core);
        continue;
      }
      const ThreadId chosen = select_ready_resident(core);
      EM2_ASSERT(chosen != kNoThread,
                 "ready-core heap out of sync with resident queues");
      rr_[c] = static_cast<std::uint32_t>(chosen + 1);
      if (sp != nullptr && chosen == sp->chosen) {
        // The speculation targeted the thread the sequential scheduler
        // picks, and nothing before this commit wrote its context (each
        // thread steps at most once per cycle; accesses only touch the
        // issuing thread's own context) — adopt the speculated step.
        threads_[static_cast<std::size_t>(chosen)].ctx = sp->ctx;
        finish_step(chosen, sp->res);
      } else {
        // Selection changed under an earlier commit (eviction re-homed a
        // resident, or a latency-0 arrival outranked the speculated pick):
        // fall back to the ordinary serial step.
        step_thread(chosen);
      }
      if (ready_count_[c] > 0 && !queued_[c]) {
        deferred_.push_back(core);
      }
    }
    for (const CoreId core : deferred_) {
      const auto c = static_cast<std::size_t>(core);
      if (!queued_[c]) {
        ready_cores_.push(core);
        queued_[c] = 1;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Relaxed mode: per-shard machines with quantum-barrier traffic exchange.

struct RelaxedEngine {
  using Wakeup = ExecSystem::Wakeup;
  using WakeupAfter = ExecSystem::WakeupAfter;

  /// Cross-shard traffic, queued at the source during a quantum and
  /// delivered at the barrier.
  struct Msg {
    enum class Kind : std::uint8_t {
      kMigrate = 0,  ///< thread + pending access travel to the home shard
      kEvict = 1,    ///< displaced guest travels to its native shard
      kRemote = 2,   ///< word-granularity request to the home shard
    };
    Kind kind = Kind::kMigrate;
    ThreadId thread = kNoThread;
    Cycle cycle = 0;      ///< shard-local issue cycle
    CoreId dest = kNoCore;
    Cost cost = 0;        ///< already charged at the source machine
    PendingAccess mem{};  ///< kMigrate / kRemote payload
  };

  struct Shard;

  struct ShardObserver final : ThreadMoveObserver {
    RelaxedEngine* eng = nullptr;
    std::uint32_t shard = 0;
    void on_thread_moved(ThreadId t, CoreId from, CoreId to) override;
  };

  struct Shard {
    std::uint32_t index = 0;
    CoreId begin = 0;
    CoreId end = 0;  // [begin, end)
    std::unique_ptr<Em2Machine> machine;
    HybridMachine* hybrid = nullptr;      // non-owning view when kEm2Ra
    std::optional<StandardPolicy> policy; // shard fork of sys.ra_policy_
    FunctionalMemory memory;              // authoritative for in-range homes
    ConsistencyChecker checker;
    ShardObserver observer;
    // Event-scheduler clone over the shard's core range (resident vectors
    // are indexed core - begin; heaps hold global core / thread ids).
    std::vector<std::vector<ThreadId>> residents;
    std::vector<std::uint32_t> ready_count;
    std::vector<char> queued;
    std::priority_queue<CoreId, std::vector<CoreId>, std::greater<CoreId>>
        ready_cores;
    std::vector<CoreId> deferred;
    std::priority_queue<Wakeup, std::vector<Wakeup>, WakeupAfter> wakeups;
    std::size_t num_ready = 0;
    Cycle now = 0;
    Cycle last_progress = 0;
    std::uint64_t instructions = 0;
    std::size_t halted = 0;
    std::vector<Msg> outbox;
  };

  ExecSystem& sys;
  Cycle quantum;
  std::uint32_t nshards;
  std::vector<Shard> shards;
  std::vector<std::uint32_t> shard_of_core;
  /// Shard policies in index order, for the barrier predictor merge
  /// (empty unless kEm2Ra).
  std::vector<StandardPolicy*> policy_ptrs;
  /// owner[t]: the shard whose machine/scheduler currently holds t.
  /// Written ONLY between quanta (init, barrier); shards read it to
  /// discard wakeup entries for threads that moved away.
  std::vector<std::uint32_t> owner;

  RelaxedEngine(ExecSystem& s, std::uint32_t n)
      : sys(s), quantum(s.params_.skew), nshards(n) {}

  Shard& shard_at(CoreId core) {
    return shards[shard_of_core[static_cast<std::size_t>(core)]];
  }

  // --- Per-shard scheduler primitives (mirrors of the ExecSystem ones,
  // over the shard-local ready structures). ---

  void core_gains(Shard& s, CoreId core) {
    const auto ci = static_cast<std::size_t>(core - s.begin);
    if (s.ready_count[ci]++ == 0 && !s.queued[ci]) {
      s.ready_cores.push(core);
      s.queued[ci] = 1;
    }
  }

  void core_loses(Shard& s, CoreId core) {
    --s.ready_count[static_cast<std::size_t>(core - s.begin)];
  }

  void mark_ready(Shard& s, ThreadId t) {
    sys.is_ready_[static_cast<std::size_t>(t)] = 1;
    ++s.num_ready;
    core_gains(s, sys.core_of_[static_cast<std::size_t>(t)]);
  }

  void mark_unready(Shard& s, ThreadId t) {
    sys.is_ready_[static_cast<std::size_t>(t)] = 0;
    --s.num_ready;
    core_loses(s, sys.core_of_[static_cast<std::size_t>(t)]);
  }

  void set_ready_at(Shard& s, ThreadId t, Cycle when) {
    ExecSystem::Thread& th = sys.threads_[static_cast<std::size_t>(t)];
    th.ready_at = when;
    if (th.halted) {
      return;
    }
    if (when > s.now) {
      if (sys.is_ready_[static_cast<std::size_t>(t)]) {
        mark_unready(s, t);
      }
      s.wakeups.push(Wakeup{when, t});
    } else if (!sys.is_ready_[static_cast<std::size_t>(t)]) {
      mark_ready(s, t);
    }
  }

  ThreadId select_ready(const Shard& s, CoreId core) const {
    const auto& res = s.residents[static_cast<std::size_t>(core - s.begin)];
    const auto start = static_cast<ThreadId>(
        sys.rr_[static_cast<std::size_t>(core)] % sys.threads_.size());
    const auto pivot = std::lower_bound(res.begin(), res.end(), start);
    for (auto it = pivot; it != res.end(); ++it) {
      if (sys.is_ready_[static_cast<std::size_t>(*it)]) {
        return *it;
      }
    }
    for (auto it = res.begin(); it != pivot; ++it) {
      if (sys.is_ready_[static_cast<std::size_t>(*it)]) {
        return *it;
      }
    }
    return kNoThread;
  }

  /// ThreadMoveObserver body: keeps the shard's resident structures in
  /// sync with its machine.  `from` is always in-range (the machine only
  /// hosts in-range threads); `to` may be an out-of-range native core
  /// (eviction departure) — the caller ships the thread at the barrier.
  void on_moved(Shard& s, ThreadId t, CoreId from, CoreId to) {
    if (sys.threads_[static_cast<std::size_t>(t)].halted) {
      sys.core_of_[static_cast<std::size_t>(t)] = to;
      return;
    }
    auto& src = s.residents[static_cast<std::size_t>(from - s.begin)];
    src.erase(std::lower_bound(src.begin(), src.end(), t));
    if (to >= s.begin && to < s.end) {
      auto& dst = s.residents[static_cast<std::size_t>(to - s.begin)];
      dst.insert(std::lower_bound(dst.begin(), dst.end(), t), t);
      if (sys.is_ready_[static_cast<std::size_t>(t)]) {
        core_loses(s, from);
        core_gains(s, to);
      }
    } else if (sys.is_ready_[static_cast<std::size_t>(t)]) {
      sys.is_ready_[static_cast<std::size_t>(t)] = 0;
      --s.num_ready;
      core_loses(s, from);
    }
    sys.core_of_[static_cast<std::size_t>(t)] = to;
  }

  /// Functional value flow + consistency witness on the home shard's
  /// partition (the relaxed analogue of the tail of serve_access).
  void serve_value(Shard& home_shard, ThreadId t, CoreId home,
                   const PendingAccess& mem) {
    ExecSystem::Thread& th = sys.threads_[static_cast<std::size_t>(t)];
    if (mem.op == MemOp::kRead) {
      const std::uint32_t value = home_shard.memory.load(mem.addr);
      home_shard.checker.on_load(t, mem.addr, value, home, home);
      RegInterpreter::complete_load(th.ctx, mem.dst_reg, value);
    } else {
      home_shard.memory.store(mem.addr, mem.store_value);
      home_shard.checker.on_store(t, mem.addr, mem.store_value, home, home);
    }
  }

  /// A migration/eviction displaced `v` at the source machine.  In-range
  /// victims re-stall locally; out-of-range ones (native core in another
  /// shard) are shipped at the barrier, cost already charged here.
  void handle_victim(Shard& s, ThreadId v, Cost cost) {
    if (v == kNoThread) {
      return;
    }
    const CoreId nat = s.machine->native(v);  // evictions target the native
    if (nat >= s.begin && nat < s.end) {
      if (!sys.threads_[static_cast<std::size_t>(v)].halted) {
        set_ready_at(
            s, v,
            std::max(sys.threads_[static_cast<std::size_t>(v)].ready_at,
                     s.now + cost));
      }
    } else {
      s.outbox.push_back(
          Msg{Msg::Kind::kEvict, v, s.now, nat, cost, PendingAccess{}});
    }
  }

  /// Removes a just-stepped (hence ready, resident) thread from the
  /// shard's scheduler ahead of a cross-shard transfer.
  void detach(Shard& s, ThreadId t, CoreId dest) {
    mark_unready(s, t);
    auto& res = s.residents[static_cast<std::size_t>(
        sys.core_of_[static_cast<std::size_t>(t)] - s.begin)];
    res.erase(std::lower_bound(res.begin(), res.end(), t));
    sys.core_of_[static_cast<std::size_t>(t)] = dest;
    sys.threads_[static_cast<std::size_t>(t)].ready_at = kFarFuture;
  }

  void serve_mem(Shard& s, ThreadId t, const PendingAccess& mem) {
    const CoreId home =
        sys.placement_.home_of_block(mem.addr >> sys.block_shift_);
    const bool local_home = home >= s.begin && home < s.end;
    if (sys.params_.arch == MemArch::kEm2) {
      if (local_home) {
        const AccessOutcome out = s.machine->access(t, home, mem.op, mem.addr);
        handle_victim(s, out.evicted_thread, out.eviction_cost);
        serve_value(s, t, home, mem);
        set_ready_at(s, t, s.now + out.thread_cost + out.memory_latency);
      } else {
        const Cost cost = s.machine->depart_for_migration(t, home, mem.op);
        detach(s, t, home);
        s.outbox.push_back(
            Msg{Msg::Kind::kMigrate, t, s.now, home, cost, mem});
      }
      return;
    }
    // kEm2Ra (kCc is rejected before the engine is built).
    const Addr block = mem.addr >> sys.block_shift_;
    if (local_home) {
      const HybridOutcome out = s.policy->visit([&](auto& p) {
        return s.hybrid->access_hybrid(p, t, home, mem.op, mem.addr, block);
      });
      handle_victim(s, out.base.evicted_thread, out.base.eviction_cost);
      serve_value(s, t, home, mem);
      set_ready_at(s, t,
                   s.now + out.base.thread_cost + out.base.memory_latency);
      return;
    }
    // Cross-shard decision: the same query access_hybrid would build, with
    // the two outcomes split across the barrier.
    DecisionQuery q;
    q.thread = t;
    q.current = s.machine->location(t);
    q.home = home;
    q.native = s.machine->native(t);
    q.op = mem.op;
    q.block = block;
    const RaDecision d = s.policy->decide(q);
    // Shard-local observe: a no-op for stateless kinds; stateful kinds
    // update the querying thread's per-thread state, which rides with
    // the thread at delivery (kMigrate) or stays put (kRemote).
    s.policy->observe(t, home, q.native);
    if (d == RaDecision::kMigrate) {
      const Cost cost = s.machine->depart_for_migration(t, home, mem.op);
      detach(s, t, home);
      s.outbox.push_back(Msg{Msg::Kind::kMigrate, t, s.now, home, cost, mem});
    } else {
      const Cost rt = s.hybrid->remote_access_cost(t, home, mem.op);
      // The thread stays resident but cannot retire the access until the
      // home shard serves it at the barrier (which sets the real ready_at).
      mark_unready(s, t);
      sys.threads_[static_cast<std::size_t>(t)].ready_at = kFarFuture;
      s.outbox.push_back(Msg{Msg::Kind::kRemote, t, s.now, home, rt, mem});
    }
  }

  void step_owned(Shard& s, ThreadId chosen) {
    ExecSystem::Thread& th = sys.threads_[static_cast<std::size_t>(chosen)];
    const StepResult r = th.interp->step(th.ctx);
    ++s.instructions;
    s.last_progress = s.now;
    switch (r.kind) {
      case StepKind::kDone:
        th.halted = true;
        ++s.halted;
        sys.report_.finish_cycle[static_cast<std::size_t>(chosen)] = s.now;
        mark_unready(s, chosen);
        {
          auto& res = s.residents[static_cast<std::size_t>(
              sys.core_of_[static_cast<std::size_t>(chosen)] - s.begin)];
          res.erase(std::lower_bound(res.begin(), res.end(), chosen));
        }
        break;
      case StepKind::kMem:
        serve_mem(s, chosen, r.mem);
        break;
      case StepKind::kOk:
        break;
    }
  }

  /// True iff `w` is a live entry for a thread this shard still owns.
  /// Owner is checked FIRST: a thread that moved away is owned (and its
  /// Thread fields written) by another shard's worker.  The core-range
  /// check covers the in-flight window: a guest evicted to an out-of-range
  /// native mid-quantum keeps its owner (and possibly a stale stall
  /// wakeup) until the barrier ships it, but its core already points
  /// outside the shard — scheduling it here would index the per-core
  /// ready structures out of bounds.
  bool wakeup_valid(const Shard& s, const Wakeup& w) const {
    if (owner[static_cast<std::size_t>(w.thread)] != s.index) {
      return false;
    }
    const CoreId core = sys.core_of_[static_cast<std::size_t>(w.thread)];
    if (core < s.begin || core >= s.end) {
      return false;
    }
    const ExecSystem::Thread& th =
        sys.threads_[static_cast<std::size_t>(w.thread)];
    return !th.halted && !sys.is_ready_[static_cast<std::size_t>(w.thread)] &&
           th.ready_at == w.at;
  }

  /// Advances one shard to `t_end` (the quantum covers (prev, t_end]).
  /// No faults, no watchdog in here — relaxed mode rejects the former and
  /// the coordinator handles the latter at barriers.
  void run_quantum(Shard& s, Cycle t_end) {
    while (s.now < t_end) {
      if (s.num_ready == 0) {
        while (!s.wakeups.empty() && !wakeup_valid(s, s.wakeups.top())) {
          s.wakeups.pop();
        }
        if (s.wakeups.empty() || s.wakeups.top().at > t_end) {
          s.now = t_end;  // idle to the barrier; messages may wake us later
          return;
        }
        s.now = s.wakeups.top().at;
      } else {
        ++s.now;
      }
      while (!s.wakeups.empty() && s.wakeups.top().at <= s.now) {
        const Wakeup w = s.wakeups.top();
        s.wakeups.pop();
        if (wakeup_valid(s, w)) {
          mark_ready(s, w.thread);
        }
      }
      CoreId cursor = -1;
      s.deferred.clear();
      while (!s.ready_cores.empty()) {
        const CoreId core = s.ready_cores.top();
        s.ready_cores.pop();
        const auto ci = static_cast<std::size_t>(core - s.begin);
        s.queued[ci] = 0;
        if (s.ready_count[ci] == 0) {
          continue;
        }
        if (core <= cursor) {
          s.deferred.push_back(core);
          continue;
        }
        cursor = core;
        const ThreadId chosen = select_ready(s, core);
        EM2_ASSERT(chosen != kNoThread,
                   "shard ready-core heap out of sync with residents");
        sys.rr_[static_cast<std::size_t>(core)] =
            static_cast<std::uint32_t>(chosen + 1);
        step_owned(s, chosen);
        if (s.ready_count[ci] > 0 && !s.queued[ci]) {
          s.deferred.push_back(core);
        }
      }
      for (const CoreId core : s.deferred) {
        const auto ci = static_cast<std::size_t>(core - s.begin);
        if (!s.queued[ci]) {
          s.ready_cores.push(core);
          s.queued[ci] = 1;
        }
      }
    }
  }

  /// Installs `t` at `dest` (barrier side), re-homing ownership and
  /// scheduling it at `ready`.  An adoption eviction is handled in place:
  /// in-range victims re-stall, out-of-range ones cascade exactly one hop
  /// (a native arrival can never evict).
  void deliver(ThreadId t, CoreId dest, Cycle ready, Cycle cause_cycle,
               Cycle t_end) {
    Shard& d = shard_at(dest);
    // Per-thread policy state rides with the thread: export from the
    // shard that decided for it so far, import into the adopter.  Must
    // precede the owner[] update — owner[t] still names the source (the
    // eviction-cascade recursion below relies on the same invariant).
    if (sys.params_.arch == MemArch::kEm2Ra) {
      Shard& src = shards[owner[static_cast<std::size_t>(t)]];
      if (src.index != d.index) {
        PolicyThreadState st;
        src.policy->export_thread_state(t, st);
        d.policy->import_thread_state(t, std::move(st));
      }
    }
    const Em2Machine::Adoption a = d.machine->adopt_thread(t, dest);
    owner[static_cast<std::size_t>(t)] = d.index;
    sys.core_of_[static_cast<std::size_t>(t)] = dest;
    ExecSystem::Thread& th = sys.threads_[static_cast<std::size_t>(t)];
    if (!th.halted) {
      auto& res = d.residents[static_cast<std::size_t>(dest - d.begin)];
      res.insert(std::lower_bound(res.begin(), res.end(), t), t);
      sys.is_ready_[static_cast<std::size_t>(t)] = 0;
      set_ready_at(d, t, ready);  // ready > d.now == t_end: wakeup push
    }
    if (a.evicted != kNoThread) {
      const ThreadId v = a.evicted;
      const CoreId vnat = d.machine->native(v);
      const Cycle vready = std::max(
          {sys.threads_[static_cast<std::size_t>(v)].ready_at,
           cause_cycle + a.eviction_cost, t_end + 1});
      if (vnat >= d.begin && vnat < d.end) {
        if (!sys.threads_[static_cast<std::size_t>(v)].halted) {
          set_ready_at(d, v, vready);
        }
      } else {
        deliver(v, vnat, vready, cause_cycle, t_end);
      }
    }
  }

  /// Delivers every quantum's cross-shard messages in deterministic
  /// (cycle, thread) order — a thread issues at most one cross-shard
  /// operation per quantum, so the key is unique and the order total.
  void barrier(Cycle t_end) {
    std::vector<Msg> msgs;
    for (Shard& s : shards) {
      msgs.insert(msgs.end(), s.outbox.begin(), s.outbox.end());
      s.outbox.clear();
    }
    std::stable_sort(msgs.begin(), msgs.end(),
                     [](const Msg& a, const Msg& b) {
                       if (a.cycle != b.cycle) {
                         return a.cycle < b.cycle;
                       }
                       return a.thread < b.thread;
                     });
    for (const Msg& m : msgs) {
      switch (m.kind) {
        case Msg::Kind::kMigrate:
          deliver(m.thread, m.dest, std::max(m.cycle + m.cost, t_end + 1),
                  m.cycle, t_end);
          // The access executes at the home core, on the home partition.
          serve_value(shard_at(m.dest), m.thread, m.dest, m.mem);
          break;
        case Msg::Kind::kEvict:
          deliver(m.thread, m.dest,
                  std::max({sys.threads_[static_cast<std::size_t>(m.thread)]
                                .ready_at,
                            m.cycle + m.cost, t_end + 1}),
                  m.cycle, t_end);
          break;
        case Msg::Kind::kRemote: {
          // Home-side service; the thread never moved.
          serve_value(shard_at(m.dest), m.thread, m.dest, m.mem);
          Shard& o = shards[owner[static_cast<std::size_t>(m.thread)]];
          set_ready_at(o, m.thread, std::max(m.cycle + m.cost, t_end + 1));
          break;
        }
      }
    }
    // Predictor merge point: fold every shard's run-length samples into
    // the base policy in shard-index order, then rebroadcast the folded
    // estimate (a no-op for every kind but cost-estimate).
    if (!policy_ptrs.empty()) {
      sys.ra_policy_->merge_shard_predictors(policy_ptrs);
    }
  }

  /// Earliest cycle any shard can make progress at (kFarFuture if none).
  Cycle min_pending() {
    Cycle wmin = kFarFuture;
    for (Shard& s : shards) {
      while (!s.wakeups.empty() && !wakeup_valid(s, s.wakeups.top())) {
        s.wakeups.pop();
      }
      if (!s.wakeups.empty()) {
        wmin = std::min(wmin, s.wakeups.top().at);
      }
    }
    return wmin;
  }

  /// Relaxed-mode thread conservation: every thread is hosted exactly once
  /// across the shard machines, at the core its owner tracks, and guest
  /// occupancy over owned ranges matches the away-from-native count.
  bool conservation_ok() {
    std::size_t away = 0;
    for (std::size_t t = 0; t < sys.threads_.size(); ++t) {
      const Shard& o = shards[owner[t]];
      const CoreId loc = o.machine->location(static_cast<ThreadId>(t));
      if (loc < o.begin || loc >= o.end || loc != sys.core_of_[t]) {
        return false;
      }
      if (loc != o.machine->native(static_cast<ThreadId>(t))) {
        ++away;
      }
    }
    std::size_t occupied = 0;
    for (const Shard& s : shards) {
      for (CoreId c = s.begin; c < s.end; ++c) {
        occupied += static_cast<std::size_t>(s.machine->guests_at(c));
      }
    }
    return occupied == away;
  }

  void init() {
    const auto cores = sys.mesh_.num_cores();
    shard_of_core.resize(static_cast<std::size_t>(cores));
    shards.resize(nshards);
    std::vector<CoreId> native;
    native.reserve(sys.threads_.size());
    for (const ExecSystem::Thread& th : sys.threads_) {
      native.push_back(th.ctx.native_core);
    }
    const CoreId base = cores / static_cast<CoreId>(nshards);
    const CoreId rem = cores % static_cast<CoreId>(nshards);
    CoreId next = 0;
    for (std::uint32_t i = 0; i < nshards; ++i) {
      Shard& s = shards[i];
      s.index = i;
      s.begin = next;
      next += base + (static_cast<CoreId>(i) < rem ? 1 : 0);
      s.end = next;
      for (CoreId c = s.begin; c < s.end; ++c) {
        shard_of_core[static_cast<std::size_t>(c)] = i;
      }
      if (sys.params_.arch == MemArch::kEm2Ra) {
        s.policy.emplace(sys.ra_policy_->fork_shard(i, nshards));
        policy_ptrs.push_back(&*s.policy);
        auto hybrid = std::make_unique<HybridMachine>(
            sys.mesh_, sys.cost_, sys.params_.em2, native);
        s.hybrid = hybrid.get();
        s.machine = std::move(hybrid);
      } else {
        s.machine = std::make_unique<Em2Machine>(sys.mesh_, sys.cost_,
                                                 sys.params_.em2, native);
      }
      s.observer.eng = this;
      s.observer.shard = i;
      s.machine->set_move_observer(&s.observer);
      // Seed the partition from the poke replay log (only in-range homes
      // are authoritative; out-of-range seeds are simply never read).
      for (const auto& [addr, value] : sys.poke_log_) {
        s.memory.store(addr, value);
        const CoreId home =
            sys.placement_.home_of_block(addr >> sys.block_shift_);
        if (home >= s.begin && home < s.end) {
          s.checker.on_store(kNoThread, addr, value, home, home);
        }
      }
      const auto span = static_cast<std::size_t>(s.end - s.begin);
      s.residents.assign(span, {});
      s.ready_count.assign(span, 0);
      s.queued.assign(span, 0);
    }
    // Thread placement: everything starts ready at its native core.
    const std::size_t n_threads = sys.threads_.size();
    owner.resize(n_threads);
    sys.is_ready_.assign(n_threads, 0);
    sys.core_of_.resize(n_threads);
    for (std::size_t t = 0; t < n_threads; ++t) {
      const CoreId c = sys.threads_[t].ctx.native_core;
      sys.core_of_[t] = c;
      Shard& s = shard_at(c);
      owner[t] = s.index;
      s.residents[static_cast<std::size_t>(c - s.begin)].push_back(
          static_cast<ThreadId>(t));
    }
    for (std::size_t t = 0; t < n_threads; ++t) {
      mark_ready(shards[owner[t]], static_cast<ThreadId>(t));
    }
  }

  ExecReport run(Cycle max_cycles) {
    init();
    const ThreadBudgetLease lease(nshards - 1);
    SpinPool pool(std::min<std::size_t>(lease.granted(), nshards - 1));

    const std::size_t n_threads = sys.threads_.size();
    std::size_t halted_total = 0;
    bool timed_out = false;
    Cycle t_end = 0;
    while (halted_total < n_threads) {
      if (t_end >= max_cycles) {
        timed_out = true;
        break;
      }
      Cycle next = t_end <= max_cycles - quantum ? t_end + quantum
                                                 : max_cycles;
      std::size_t any_ready = 0;
      for (const Shard& s : shards) {
        any_ready += s.num_ready;
      }
      if (any_ready == 0) {
        const Cycle wmin = min_pending();
        EM2_ASSERT(wmin != kFarFuture,
                   "live threads but no pending wakeup in any shard: "
                   "relaxed engine would hang");
        next = std::min(std::max(next, wmin), max_cycles);
      }
      t_end = next;
      pool.run([&](std::size_t part, std::size_t nparts) {
        for (std::size_t i = part; i < shards.size(); i += nparts) {
          run_quantum(shards[i], t_end);
        }
      });
      barrier(t_end);
      halted_total = 0;
      Cycle progress = 0;
      for (const Shard& s : shards) {
        halted_total += s.halted;
        progress = std::max(progress, s.last_progress);
      }
      if (sys.params_.watchdog_cycles > 0 && halted_total < n_threads &&
          t_end - progress >= sys.params_.watchdog_cycles) {
        sys.now_ = t_end;
        sys.last_progress_ = progress;
        sys.halted_count_ = halted_total;
        sys.fire_watchdog(
            "no instruction retired within the watchdog window (relaxed)");
        timed_out = true;
        break;
      }
    }

    // Report assembly (the relaxed analogue of run()'s tail).
    ExecReport& rep = sys.report_;
    Cycle cycles = timed_out ? std::min(t_end, max_cycles) : 0;
    if (!timed_out) {
      for (const Cycle f : rep.finish_cycle) {
        cycles = std::max(cycles, f);
      }
    }
    sys.now_ = cycles;
    sys.halted_count_ = halted_total;
    rep.cycles = cycles;
    rep.instructions = 0;
    rep.timed_out = timed_out;
    bool checkers_ok = true;
    FastCounters merged;
    for (const Shard& s : shards) {
      rep.instructions += s.instructions;
      checkers_ok = checkers_ok && s.checker.ok();
      merged.merge(s.machine->counters());
      for (const ConsistencyViolation& v : s.checker.violations()) {
        rep.violations.push_back(v);
      }
    }
    rep.consistent = checkers_ok && !timed_out;
    rep.conservation_ok = conservation_ok();
    rep.counters = merged.named();
    // Fold each shard's OWNED words back into the system memory so
    // peek() observes the final state regardless of engine.  Only
    // in-range homes are authoritative — every shard carries the full
    // poke seed, but a word homed elsewhere is never written locally.
    for (const Shard& s : shards) {
      for (const auto& [addr, value] : s.memory.words()) {
        const CoreId home =
            sys.placement_.home_of_block(addr >> sys.block_shift_);
        if (home >= s.begin && home < s.end) {
          sys.memory_.store(addr, value);
        }
      }
    }
    return rep;
  }
};

void RelaxedEngine::ShardObserver::on_thread_moved(ThreadId t, CoreId from,
                                                   CoreId to) {
  eng->on_moved(eng->shards[shard], t, from, to);
}

ExecReport ExecSystem::run_relaxed(Cycle max_cycles, std::uint32_t nshards) {
  EM2_ASSERT(params_.skew > 0 && nshards > 1,
             "run_relaxed requires skew > 0 and more than one shard");
  if (params_.arch == MemArch::kEm2Ra) {
    EM2_ASSERT(policy_spec_is_shardable(params_.ra_policy),
               "relaxed-sync sharding (skew > 0) requires a "
               "shard-partitionable decision policy: every standard "
               "scheme qualifies under the fork/merge contract; custom: "
               "wrappers only around stateless inner schemes");
    // Base instance: shard policies fork from it, barrier predictor
    // merges fold back into it, and ra_policy_name() labels read it.
    ra_policy_.emplace(StandardPolicy::make(params_.ra_policy, mesh_, cost_));
  }
  report_ = ExecReport{};
  report_.finish_cycle.assign(threads_.size(), 0);
  RelaxedEngine engine(*this, nshards);
  return engine.run(max_cycles);
}

}  // namespace em2
