#include "sim/sweep.hpp"

#include <algorithm>
#include <cstdint>
#include <exception>

#include "util/assert.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_budget.hpp"

namespace em2::sweep {

unsigned resolve_threads(const Options& opts) noexcept {
  if (opts.num_threads != 0) {
    return opts.num_threads;
  }
  // Default width comes from the shared process budget (EM2_THREAD_BUDGET
  // or hardware_concurrency) rather than hardware_concurrency directly,
  // so the sweep runner and the sharded single-run engine draw from one
  // pool instead of each claiming the whole machine.
  return static_cast<unsigned>(thread_budget_total());
}

namespace detail {

namespace {

/// A worker's contiguous slice of the point space, packed begin<<32|end
/// into one atomic word so claims and steals are single CAS operations.
/// Cache-line aligned: the owner hammers its own word from the front
/// while thieves only touch it when they run dry, so the common case is
/// core-local — unlike the former single shared atomic index, which
/// every point of a large matrix bounced between all cores.
struct alignas(64) Chunk {
  std::atomic<std::uint64_t> range{0};
};

constexpr std::uint64_t pack(std::uint32_t begin, std::uint32_t end) {
  return (static_cast<std::uint64_t>(begin) << 32) | end;
}

/// Owner path: claim the next index from the front of `c`; -1 when empty.
std::int64_t claim_front(std::atomic<std::uint64_t>& c) {
  std::uint64_t cur = c.load(std::memory_order_relaxed);
  while (true) {
    const auto begin = static_cast<std::uint32_t>(cur >> 32);
    const auto end = static_cast<std::uint32_t>(cur);
    if (begin >= end) {
      return -1;
    }
    if (c.compare_exchange_weak(cur, pack(begin + 1, end),
                                std::memory_order_acq_rel,
                                std::memory_order_relaxed)) {
      return begin;
    }
  }
}

/// Thief path: steal the UPPER half of `victim`'s remaining range.  The
/// thief runs the first stolen index immediately and installs the rest as
/// its own chunk (it only steals when its chunk is empty), so subsequent
/// claims — and steals by other thieves — proceed against the thief's
/// word.  Returns the index to run, or -1 if the victim was empty.
std::int64_t steal_half(std::atomic<std::uint64_t>& victim,
                        std::atomic<std::uint64_t>& own) {
  std::uint64_t cur = victim.load(std::memory_order_acquire);
  while (true) {
    const auto begin = static_cast<std::uint32_t>(cur >> 32);
    const auto end = static_cast<std::uint32_t>(cur);
    if (begin >= end) {
      return -1;
    }
    // Victim keeps the lower ceil-half [begin, mid), thief takes
    // [mid, end).  A single remaining point is not worth a steal — its
    // holder runs it.
    const std::uint32_t mid = begin + (end - begin + 1) / 2;
    if (mid >= end) {
      return -1;
    }
    if (victim.compare_exchange_weak(cur, pack(begin, mid),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      own.store(pack(mid + 1, end), std::memory_order_release);
      return mid;
    }
  }
}

/// First-exception capture shared by the pool workers: `failed()` is the
/// lock-free stop signal the claim loops poll, and the mutex arbitrates
/// which worker's exception is "first" (every later one is dropped, as
/// the serial loop would never have reached its point).  The pointer is
/// only read back on the calling thread after every worker joined.
class ErrorCapture {
 public:
  bool failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }

  void capture(std::exception_ptr error) EM2_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    if (!failed_.exchange(true, std::memory_order_release)) {
      first_ = std::move(error);
    }
  }

  /// Rethrows the captured exception, if any.  Call only after join():
  /// the joins order every capture() before this read.
  void rethrow_if_any() EM2_EXCLUDES(mutex_) {
    const MutexLock lock(mutex_);
    if (first_ != nullptr) {
      std::rethrow_exception(first_);
    }
  }

 private:
  std::atomic<bool> failed_{false};
  Mutex mutex_;
  std::exception_ptr first_ EM2_GUARDED_BY(mutex_);
};

}  // namespace

void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body,
                 const Options& opts) {
  const unsigned workers = resolve_threads(opts);
  std::atomic<std::size_t> completed{0};
  const auto report_done = [&] {
    if (opts.progress) {
      const std::size_t done =
          completed.fetch_add(1, std::memory_order_acq_rel) + 1;
      opts.progress(done, n);
    }
  };
  // Helper threads are leased from the shared process budget: a sweep
  // running inside an already-parallel context (or alongside sharded
  // runs) gets however many helpers are still unclaimed and degrades to
  // the serial loop when the budget is spent — never workers x shards
  // oversubscription.  The lease is released when the sweep returns.
  const std::size_t want = std::min<std::size_t>(workers, std::max<std::size_t>(n, 1));
  const ThreadBudgetLease lease(want > 0 ? want - 1 : 0);
  const unsigned spawned = static_cast<unsigned>(1 + lease.granted());
  if (spawned <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
      report_done();
    }
    return;
  }
  EM2_ASSERT(n <= 0xffffffffull,
             "sweep point indices are packed into 32 bits");
  // Work-stealing chunked scheduler: the point space splits into one
  // contiguous chunk per worker; owners drain their chunk from the front,
  // and a worker that runs dry steals the upper half of another's
  // remainder.  Every index lives in exactly one chunk at any moment and
  // whoever holds a chunk drains it, so all points still run exactly once
  // — and since point i only ever writes results[i], the output stays
  // byte-identical to the serial loop no matter who ran what (tested).
  std::vector<Chunk> chunks(spawned);
  for (unsigned w = 0; w < spawned; ++w) {
    const auto begin = static_cast<std::uint32_t>(n * w / spawned);
    const auto end = static_cast<std::uint32_t>(n * (w + 1) / spawned);
    chunks[w].range.store(pack(begin, end), std::memory_order_relaxed);
  }
  // A body() exception on a pool thread would escape the thread function
  // and call std::terminate.  Instead the first exception is captured, the
  // pool stops claiming new points (in-flight points finish), and the
  // exception is rethrown on the calling thread after all workers joined.
  ErrorCapture errors;
  auto worker = [&](unsigned w) {
    while (!errors.failed()) {
      std::int64_t i = claim_front(chunks[w].range);
      if (i < 0) {
        // Own chunk dry: scan the others round-robin for work to steal.
        for (unsigned off = 1; off < spawned && i < 0; ++off) {
          i = steal_half(chunks[(w + off) % spawned].range,
                         chunks[w].range);
        }
        if (i < 0) {
          return;  // nothing left anywhere: remaining holders drain theirs
        }
      }
      try {
        body(static_cast<std::size_t>(i));
      } catch (...) {
        errors.capture(std::current_exception());
      }
      report_done();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(spawned - 1);
  for (unsigned w = 1; w < spawned; ++w) {
    pool.emplace_back(worker, w);
  }
  worker(0);  // the calling thread is worker 0
  for (std::thread& th : pool) {
    th.join();
  }
  errors.rethrow_if_any();
}

}  // namespace detail

CounterSet merge_all(const std::vector<CounterSet>& shards) {
  CounterSet total;
  for (const CounterSet& s : shards) {
    total.merge(s);
  }
  return total;
}

RunningStat merge_all(const std::vector<RunningStat>& shards) {
  RunningStat total;
  for (const RunningStat& s : shards) {
    total.merge(s);
  }
  return total;
}

Histogram merge_all(const std::vector<Histogram>& shards) {
  EM2_ASSERT(!shards.empty(), "merging an empty histogram shard list");
  Histogram total(shards.front().max_tracked());
  for (const Histogram& s : shards) {
    total.merge(s);
  }
  return total;
}

}  // namespace em2::sweep
