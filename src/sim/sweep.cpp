#include "sim/sweep.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

#include "util/assert.hpp"

namespace em2::sweep {

unsigned resolve_threads(const Options& opts) noexcept {
  if (opts.num_threads != 0) {
    return opts.num_threads;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace detail {

void run_indexed(std::size_t n, const std::function<void(std::size_t)>& body,
                 const Options& opts) {
  const unsigned workers = resolve_threads(opts);
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  // A body() exception on a pool thread would escape the thread function
  // and call std::terminate.  Instead the first exception is captured, the
  // pool stops claiming new points (in-flight points finish), the queue is
  // drained, and the exception is rethrown on the calling thread after all
  // workers joined.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&]() {
    while (!failed.load(std::memory_order_acquire)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        body(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true, std::memory_order_release)) {
          first_error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> pool;
  const unsigned spawned =
      static_cast<unsigned>(std::min<std::size_t>(workers, n));
  pool.reserve(spawned - 1);
  for (unsigned w = 1; w < spawned; ++w) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread is worker 0
  for (std::thread& th : pool) {
    th.join();
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace detail

CounterSet merge_all(const std::vector<CounterSet>& shards) {
  CounterSet total;
  for (const CounterSet& s : shards) {
    total.merge(s);
  }
  return total;
}

RunningStat merge_all(const std::vector<RunningStat>& shards) {
  RunningStat total;
  for (const RunningStat& s : shards) {
    total.merge(s);
  }
  return total;
}

Histogram merge_all(const std::vector<Histogram>& shards) {
  EM2_ASSERT(!shards.empty(), "merging an empty histogram shard list");
  Histogram total(shards.front().max_tracked());
  for (const Histogram& s : shards) {
    total.merge(s);
  }
  return total;
}

}  // namespace em2::sweep
