#include "sim/modes.hpp"

#include "util/error.hpp"

namespace em2 {

const char* to_string(MemArch arch) noexcept {
  switch (arch) {
    case MemArch::kEm2:
      return "em2";
    case MemArch::kEm2Ra:
      return "em2-ra";
    case MemArch::kCc:
      return "cc";
  }
  return "?";
}

const char* to_string(SchedulerKind kind) noexcept {
  switch (kind) {
    case SchedulerKind::kEventDriven:
      return "event";
    case SchedulerKind::kScan:
      return "scan";
  }
  return "?";
}

const char* to_string(RunMode mode) noexcept {
  switch (mode) {
    case RunMode::kTrace:
      return "trace";
    case RunMode::kExec:
      return "exec";
    case RunMode::kOptimal:
      return "optimal";
  }
  return "?";
}

const char* to_string(ContentionMode mode) noexcept {
  switch (mode) {
    case ContentionMode::kNone:
      return "none";
    case ContentionMode::kMeasured:
      return "measured";
    case ContentionMode::kEstimated:
      return "estimated";
  }
  return "?";
}

std::optional<MemArch> parse_mem_arch(std::string_view name) noexcept {
  if (name == "em2") {
    return MemArch::kEm2;
  }
  if (name == "em2-ra" || name == "em2ra") {
    return MemArch::kEm2Ra;
  }
  if (name == "cc" || name == "cc-msi" || name == "msi") {
    return MemArch::kCc;
  }
  return std::nullopt;
}

std::optional<SchedulerKind> parse_scheduler_kind(
    std::string_view name) noexcept {
  if (name == "event" || name == "event-driven") {
    return SchedulerKind::kEventDriven;
  }
  if (name == "scan") {
    return SchedulerKind::kScan;
  }
  return std::nullopt;
}

std::optional<RunMode> parse_run_mode(std::string_view name) noexcept {
  if (name == "trace") {
    return RunMode::kTrace;
  }
  if (name == "exec" || name == "execution") {
    return RunMode::kExec;
  }
  if (name == "optimal") {
    return RunMode::kOptimal;
  }
  return std::nullopt;
}

std::optional<ContentionMode> parse_contention_mode(
    std::string_view name) noexcept {
  if (name == "none" || name == "uncontended") {
    return ContentionMode::kNone;
  }
  if (name == "measured") {
    return ContentionMode::kMeasured;
  }
  if (name == "estimated") {
    return ContentionMode::kEstimated;
  }
  return std::nullopt;
}

ContentionMode contention_mode_from_name(std::string_view name) {
  const auto mode = parse_contention_mode(name);
  if (!mode) {
    fail_unknown("contention mode", name, contention_mode_names());
  }
  return *mode;
}

std::vector<std::string_view> mem_arch_names() {
  return {"em2", "em2-ra", "cc"};
}

std::vector<std::string_view> scheduler_kind_names() {
  return {"event", "scan"};
}

std::vector<std::string_view> run_mode_names() {
  return {"trace", "exec", "optimal"};
}

std::vector<std::string_view> contention_mode_names() {
  return {"none", "measured", "estimated"};
}

}  // namespace em2
