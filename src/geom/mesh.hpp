// 2-D mesh geometry: the physical arrangement of cores assumed throughout
// the paper (EM2 targets tiled 1000-core-scale chips with a mesh NoC).
//
// Cores are numbered row-major: core id = y * width + x.  All distance and
// routing questions in both the analytic cost model and the cycle-level NoC
// resolve through this class.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace em2 {

/// (x, y) tile coordinate in the mesh.
struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Output port direction of a mesh router (also used as link identity).
enum class Direction : std::uint8_t {
  kLocal = 0,  // ejection to the attached core
  kEast = 1,
  kWest = 2,
  kNorth = 3,
  kSouth = 4,
};

inline constexpr int kNumDirections = 5;

/// Returns a short name ("L", "E", ...).
const char* to_string(Direction d) noexcept;

/// Rectangular 2-D mesh of width x height tiles.
class Mesh {
 public:
  Mesh(std::int32_t width, std::int32_t height);

  /// Convenience: the smallest near-square mesh holding `cores` tiles
  /// (e.g., 64 -> 8x8, 12 -> 4x3).  Width >= height always.
  static Mesh near_square(std::int32_t cores);

  std::int32_t width() const noexcept { return width_; }
  std::int32_t height() const noexcept { return height_; }
  std::int32_t num_cores() const noexcept { return width_ * height_; }

  Coord coord_of(CoreId core) const noexcept {
    return coords_[static_cast<std::size_t>(core)];
  }
  CoreId core_at(Coord c) const noexcept;
  bool contains(Coord c) const noexcept;

  /// Manhattan (hop) distance between two cores — the `hops` term in the
  /// paper's migration and remote-access cost functions.  Reads the
  /// precomputed coordinate table: no div/mod on the access hot path.
  std::int32_t hops(CoreId a, CoreId b) const noexcept {
    const Coord ca = coords_[static_cast<std::size_t>(a)];
    const Coord cb = coords_[static_cast<std::size_t>(b)];
    const std::int32_t dx = ca.x - cb.x;
    const std::int32_t dy = ca.y - cb.y;
    return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
  }

  /// Neighbour of `core` in direction `d`, or kNoCore at a mesh edge
  /// (kLocal returns `core` itself).
  CoreId neighbor(CoreId core, Direction d) const noexcept;

  /// Next-hop output direction under deterministic XY dimension-ordered
  /// routing from `at` toward `dest` (kLocal when at == dest).  XY routing
  /// is deadlock-free within one virtual network, which is why the EM2
  /// virtual-network split (migration/eviction/remote-access) suffices for
  /// protocol-level deadlock freedom.
  Direction route_xy(CoreId at, CoreId dest) const noexcept;

  /// Full XY path from `src` to `dest`, inclusive of both endpoints.
  std::vector<CoreId> path_xy(CoreId src, CoreId dest) const;

  /// Maximum hop distance in this mesh (the diameter).
  std::int32_t diameter() const noexcept {
    return (width_ - 1) + (height_ - 1);
  }

 private:
  std::int32_t width_;
  std::int32_t height_;
  /// coords_[core] = (x, y), precomputed at construction so coord_of and
  /// hops are pure loads.
  std::vector<Coord> coords_;
};

}  // namespace em2
