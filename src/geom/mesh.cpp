#include "geom/mesh.hpp"

#include <cmath>
#include <cstdlib>

#include "util/assert.hpp"

namespace em2 {

const char* to_string(Direction d) noexcept {
  switch (d) {
    case Direction::kLocal:
      return "L";
    case Direction::kEast:
      return "E";
    case Direction::kWest:
      return "W";
    case Direction::kNorth:
      return "N";
    case Direction::kSouth:
      return "S";
  }
  return "?";
}

Mesh::Mesh(std::int32_t width, std::int32_t height)
    : width_(width), height_(height) {
  EM2_ASSERT(width >= 1 && height >= 1, "mesh dimensions must be positive");
  coords_.reserve(static_cast<std::size_t>(width) *
                  static_cast<std::size_t>(height));
  for (CoreId core = 0; core < width * height; ++core) {
    coords_.push_back(Coord{core % width_, core / width_});
  }
}

Mesh Mesh::near_square(std::int32_t cores) {
  EM2_ASSERT(cores >= 1, "mesh must hold at least one core");
  auto h = static_cast<std::int32_t>(std::sqrt(static_cast<double>(cores)));
  while (h > 1 && cores % h != 0) {
    --h;
  }
  return Mesh(cores / h, h);
}

CoreId Mesh::core_at(Coord c) const noexcept { return c.y * width_ + c.x; }

bool Mesh::contains(Coord c) const noexcept {
  return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
}

CoreId Mesh::neighbor(CoreId core, Direction d) const noexcept {
  Coord c = coord_of(core);
  switch (d) {
    case Direction::kLocal:
      return core;
    case Direction::kEast:
      ++c.x;
      break;
    case Direction::kWest:
      --c.x;
      break;
    case Direction::kNorth:
      --c.y;
      break;
    case Direction::kSouth:
      ++c.y;
      break;
  }
  return contains(c) ? core_at(c) : kNoCore;
}

Direction Mesh::route_xy(CoreId at, CoreId dest) const noexcept {
  const Coord a = coord_of(at);
  const Coord d = coord_of(dest);
  if (a.x < d.x) {
    return Direction::kEast;
  }
  if (a.x > d.x) {
    return Direction::kWest;
  }
  if (a.y < d.y) {
    return Direction::kSouth;
  }
  if (a.y > d.y) {
    return Direction::kNorth;
  }
  return Direction::kLocal;
}

std::vector<CoreId> Mesh::path_xy(CoreId src, CoreId dest) const {
  std::vector<CoreId> path;
  path.reserve(static_cast<std::size_t>(hops(src, dest)) + 1);
  CoreId at = src;
  path.push_back(at);
  while (at != dest) {
    at = neighbor(at, route_xy(at, dest));
    EM2_ASSERT(at != kNoCore, "XY routing stepped off the mesh");
    path.push_back(at);
  }
  return path;
}

}  // namespace em2
