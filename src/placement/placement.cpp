#include "placement/placement.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace em2 {
namespace {

std::uint64_t splitmix64_once(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

StripedPlacement::StripedPlacement(std::int32_t num_cores)
    : num_cores_(num_cores) {
  EM2_ASSERT(num_cores >= 1, "placement needs at least one core");
}

CoreId StripedPlacement::home_of_block(Addr block) const {
  return static_cast<CoreId>(block %
                             static_cast<std::uint64_t>(num_cores_));
}

HashedPlacement::HashedPlacement(std::int32_t num_cores, std::uint64_t salt)
    : num_cores_(num_cores), salt_(salt) {
  EM2_ASSERT(num_cores >= 1, "placement needs at least one core");
}

CoreId HashedPlacement::home_of_block(Addr block) const {
  return static_cast<CoreId>(splitmix64_once(block ^ salt_) %
                             static_cast<std::uint64_t>(num_cores_));
}

TablePlacement::TablePlacement(std::int32_t num_cores)
    : num_cores_(num_cores) {
  EM2_ASSERT(num_cores >= 1, "placement needs at least one core");
}

CoreId TablePlacement::home_of_block(Addr block) const {
  const auto it = table_.find(block);
  if (it != table_.end()) {
    return it->second;
  }
  return static_cast<CoreId>(block %
                             static_cast<std::uint64_t>(num_cores_));
}

void TablePlacement::assign(Addr block, CoreId home) {
  EM2_ASSERT(home >= 0 && home < num_cores_,
             "block assigned to a nonexistent core");
  table_[block] = home;
}

std::vector<std::uint64_t> TablePlacement::blocks_per_core() const {
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(num_cores_), 0);
  // determinism: order-insensitive integer accumulation — each entry
  // bumps its own core's counter exactly once, in any iteration order.
  for (const auto& [block, core] : table_) {
    ++counts[static_cast<std::size_t>(core)];
  }
  return counts;
}

FirstTouchPlacement::FirstTouchPlacement(const TraceSource& traces,
                                         std::int32_t num_cores)
    : TablePlacement(num_cores) {
  // Deterministic round-robin interleaving: one access per live thread per
  // round, threads in id order.
  std::vector<std::unique_ptr<AccessCursor>> cursor;
  cursor.reserve(traces.num_threads());
  for (std::size_t t = 0; t < traces.num_threads(); ++t) {
    cursor.push_back(traces.make_cursor(t));
  }
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < traces.num_threads(); ++t) {
      const Access* a = cursor[t]->next();
      if (a == nullptr) {
        continue;
      }
      const Addr block = traces.block_of(a->addr);
      progressed = true;
      if (table_.find(block) == table_.end()) {
        CoreId native = traces.native_core(t);
        EM2_ASSERT(native >= 0 && native < num_cores_,
                   "thread native core outside the mesh");
        table_.emplace(block, native);
      }
    }
  }
}

ProfileGreedyPlacement::ProfileGreedyPlacement(const TraceSource& traces,
                                               std::int32_t num_cores)
    : TablePlacement(num_cores) {
  // Count per-(block, native core) accesses, then pick the argmax.
  std::unordered_map<Addr, std::unordered_map<CoreId, std::uint64_t>> counts;
  for (std::size_t t = 0; t < traces.num_threads(); ++t) {
    const CoreId native = traces.native_core(t);
    auto cursor = traces.make_cursor(t);
    while (const Access* a = cursor->next()) {
      ++counts[traces.block_of(a->addr)][native];
    }
  }
  // determinism: each block's argmax is computed independently (the inner
  // scan walks cores in ascending order, which fixes the tie-break), and
  // table_ emplacement is keyed — the final table is the same map for any
  // iteration order over `counts`.
  for (const auto& [block, per_core] : counts) {
    CoreId best = kNoCore;
    std::uint64_t best_count = 0;
    for (std::int32_t core = 0; core < num_cores_; ++core) {
      const auto it = per_core.find(core);
      const std::uint64_t c = it == per_core.end() ? 0 : it->second;
      if (c > best_count) {
        best_count = c;
        best = core;
      }
    }
    if (best != kNoCore) {
      table_.emplace(block, best);
    }
  }
}

std::vector<CoreId> home_sequence(const ThreadTrace& thread,
                                  const TraceSet& traces,
                                  const Placement& placement) {
  std::vector<CoreId> homes;
  homes.reserve(thread.size());
  for (const auto& a : thread.accesses()) {
    homes.push_back(placement.home_of_block(traces.block_of(a.addr)));
  }
  return homes;
}

std::unique_ptr<Placement> make_placement(const std::string& scheme,
                                          const TraceSource& traces,
                                          std::int32_t num_cores) {
  if (scheme == "striped") {
    return std::make_unique<StripedPlacement>(num_cores);
  }
  if (scheme == "hashed") {
    return std::make_unique<HashedPlacement>(num_cores);
  }
  if (scheme == "first-touch") {
    return std::make_unique<FirstTouchPlacement>(traces, num_cores);
  }
  if (scheme == "profile-greedy") {
    return std::make_unique<ProfileGreedyPlacement>(traces, num_cores);
  }
  return nullptr;
}

std::unique_ptr<Placement> make_placement(const std::string& scheme,
                                          const TraceSet& traces,
                                          std::int32_t num_cores) {
  return make_placement(scheme, MemoryTraceSource(traces), num_cores);
}

std::vector<std::string> placement_names() {
  return {"first-touch", "striped", "hashed", "profile-greedy"};
}

}  // namespace em2
