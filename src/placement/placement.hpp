// Data placement: the address -> home-core assignment d(.) of the paper.
//
// Under EM2 every cache block is cacheable at exactly one core (its home);
// "a good data placement method (one which keeps a thread's private data
// assigned to that thread's native core, and allocates shared data among
// the sharers) is critical" (paper, Section 2).  The paper's evaluation
// uses first-touch placement; we provide that plus ablation alternatives.
//
// Placement operates on *blocks* (cache lines): block = addr >> log2(block
// size), matching TraceSet::block_of.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/stream/source.hpp"
#include "trace/trace.hpp"
#include "util/types.hpp"

namespace em2 {

/// Abstract address-to-home-core map.
class Placement {
 public:
  virtual ~Placement() = default;

  /// Home core of placement block `block` (NOT a byte address).
  virtual CoreId home_of_block(Addr block) const = 0;

  /// Short scheme name for reports ("first-touch", "striped", ...).
  virtual std::string name() const = 0;

  /// Convenience: home core of byte address `addr` for a given block size
  /// bookkeeping object.
  CoreId home_of(Addr addr, const TraceSet& traces) const {
    return home_of_block(traces.block_of(addr));
  }
};

/// Blocks striped round-robin across cores: block b -> b mod P.
/// The placement-oblivious baseline: spreads load but ignores locality.
class StripedPlacement final : public Placement {
 public:
  explicit StripedPlacement(std::int32_t num_cores);
  CoreId home_of_block(Addr block) const override;
  std::string name() const override { return "striped"; }

 private:
  std::int32_t num_cores_;
};

/// Blocks placed by a splitmix64 hash of the block index: destroys both
/// locality and structure (worst reasonable placement; used as the "bad
/// placement" pole in ablations).
class HashedPlacement final : public Placement {
 public:
  HashedPlacement(std::int32_t num_cores, std::uint64_t salt = 0);
  CoreId home_of_block(Addr block) const override;
  std::string name() const override { return "hashed"; }

 private:
  std::int32_t num_cores_;
  std::uint64_t salt_;
};

/// An explicit block -> core table with a fallback for unmapped blocks.
/// Base class for trace-derived placements; also usable directly.
class TablePlacement : public Placement {
 public:
  explicit TablePlacement(std::int32_t num_cores);

  CoreId home_of_block(Addr block) const override;
  std::string name() const override { return "table"; }

  /// Assigns (or reassigns) a block's home.
  void assign(Addr block, CoreId home);

  /// Blocks with no explicit assignment fall back to striping.
  std::size_t assigned_blocks() const noexcept { return table_.size(); }

  /// Per-core count of assigned blocks (placement balance metric).
  std::vector<std::uint64_t> blocks_per_core() const;

 protected:
  std::int32_t num_cores_;
  std::unordered_map<Addr, CoreId> table_;
};

/// First-touch placement — what the paper's evaluation uses.  The first
/// thread to touch a block becomes its home (at that thread's native
/// core).  "First" is defined by a deterministic round-robin interleaving
/// of the per-thread traces: one access per thread per round.  This mirrors
/// how first-touch behaves when all threads start together, and makes runs
/// reproducible.
class FirstTouchPlacement final : public TablePlacement {
 public:
  FirstTouchPlacement(const TraceSource& traces, std::int32_t num_cores);
  FirstTouchPlacement(const TraceSet& traces, std::int32_t num_cores)
      : FirstTouchPlacement(MemoryTraceSource(traces), num_cores) {}
  std::string name() const override { return "first-touch"; }
};

/// Profile-greedy placement: each block goes to the native core of the
/// thread that accesses it most (ties to the lower core id).  This is the
/// strongest static placement a profile-driven system could pick, used as
/// the "good placement" pole in ablations.
class ProfileGreedyPlacement final : public TablePlacement {
 public:
  ProfileGreedyPlacement(const TraceSource& traces, std::int32_t num_cores);
  ProfileGreedyPlacement(const TraceSet& traces, std::int32_t num_cores)
      : ProfileGreedyPlacement(MemoryTraceSource(traces), num_cores) {}
  std::string name() const override { return "profile-greedy"; }
};

/// Computes the per-access home-core sequence d(m_1..m_N) for a thread —
/// the input to run-length analysis and to the DP optimal solver.
std::vector<CoreId> home_sequence(const ThreadTrace& thread,
                                  const TraceSet& traces,
                                  const Placement& placement);

/// Factory by name ("striped" | "hashed" | "first-touch" |
/// "profile-greedy"); returns nullptr for unknown names.  The
/// TraceSource form streams the trace through cursors, so trace-derived
/// schemes also build out-of-core.
std::unique_ptr<Placement> make_placement(const std::string& scheme,
                                          const TraceSource& traces,
                                          std::int32_t num_cores);
std::unique_ptr<Placement> make_placement(const std::string& scheme,
                                          const TraceSet& traces,
                                          std::int32_t num_cores);

/// The scheme names make_placement understands, for CLI help and
/// fail-fast error messages.
std::vector<std::string> placement_names();

}  // namespace em2
