#include "coherence/cc_sim.hpp"

#include "util/assert.hpp"

namespace em2 {

double CcRunReport::mean_latency_per_access() const noexcept {
  const std::uint64_t accesses = counters.get("accesses");
  return accesses == 0 ? 0.0
                       : static_cast<double>(total_latency) /
                             static_cast<double>(accesses);
}

double CcRunReport::messages_per_access() const noexcept {
  const std::uint64_t accesses = counters.get("accesses");
  return accesses == 0 ? 0.0
                       : static_cast<double>(counters.get("messages")) /
                             static_cast<double>(accesses);
}

CcRunReport run_cc(const TraceSource& traces, const Placement& placement,
                   const Mesh& mesh, const CostModel& cost,
                   const DirCcParams& params, TrafficRecorder* recorder) {
  EM2_ASSERT(params.private_cache.line_bytes == traces.block_bytes(),
             "CC line size must match the trace block size so the "
             "directory and the placement agree on line identity");
  const std::size_t nthreads = traces.num_threads();
  DirectoryCC cc(mesh, cost, params, placement);

  std::vector<Cycle> clock;
  if (recorder != nullptr) {
    cc.set_traffic_sink(recorder);
    clock.assign(nthreads, 0);
  }

  std::vector<std::unique_ptr<AccessCursor>> cursor;
  cursor.reserve(nthreads);
  std::vector<CoreId> native;
  native.reserve(nthreads);
  for (std::size_t t = 0; t < nthreads; ++t) {
    cursor.push_back(traces.make_cursor(t));
    native.push_back(traces.native_core(t));
  }
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < nthreads; ++t) {
      const Access* ap = cursor[t]->next();
      if (ap == nullptr) {
        continue;
      }
      const Access& a = *ap;
      progressed = true;
      const CcAccessResult r = cc.access(native[t], a.addr, a.op);
      if (recorder != nullptr) {
        recorder->stamp(clock[t]);
        clock[t] += 1 + r.latency;
      }
    }
  }

  CcRunReport report;
  report.counters = cc.counters().named();
  report.total_latency = cc.total_latency();
  report.traffic_bits = cc.traffic_bits();
  report.replication_factor = cc.replication_factor();
  report.directory_bits = cc.directory_bits();
  report.distinct_lines = cc.distinct_resident_lines();
  report.valid_lines = cc.total_valid_lines();
  return report;
}

CcRunReport run_cc(const TraceSet& traces, const Placement& placement,
                   const Mesh& mesh, const CostModel& cost,
                   const DirCcParams& params, TrafficRecorder* recorder) {
  return run_cc(MemoryTraceSource(traces), placement, mesh, cost, params,
                recorder);
}

}  // namespace em2
