// Directory-based MSI cache coherence — the baseline EM2 is positioned
// against.
//
// The paper (Section 1/2): "ensuring coherence among private caches is an
// expensive proposition ... directory sizes needed in cache-coherence
// protocols must equal a significant portion of the combined size of the
// per-core caches"; EM2 "can potentially outperform traditional
// directory-based cache coherence (CC) by avoiding the data replication
// and loss of effective cache capacity of CC and by enabling data access
// through a one-way migration protocol."
//
// This is a transaction-level (message-accurate, unconcurrent) MSI
// protocol: each access runs its full coherence transaction to completion
// before the next begins, which is exactly the fidelity needed to count
// protocol messages, traffic bits, replication, and directory state — the
// quantities the paper's claims are about.
//
// Scheduler note: under CC, data moves and threads do not — every thread
// executes pinned to its native core for the whole run.  The execution
// engine's event-driven scheduler therefore builds each core's resident
// queue once at startup and never receives a ThreadMoveObserver callback
// for this architecture (there is nothing to observe).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "geom/mesh.hpp"
#include "mem/cache.hpp"
#include "noc/cost_model.hpp"
#include "noc/traffic.hpp"
#include "placement/placement.hpp"
#include "util/counters.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace em2 {

/// MSI stability states as stored in private-cache line state bytes.
enum class MsiState : std::uint8_t {
  kInvalid = 0,
  kShared = 1,
  kModified = 2,
};

/// Directory-CC configuration.  The private cache defaults to the paper's
/// combined per-core capacity (16KB L1 + 64KB L2) as a single level —
/// transaction-level modelling does not need the L1/L2 split, only the
/// capacity and line size.
struct DirCcParams {
  CacheParams private_cache{80 * 1024, 8, 64};
  /// Local hit latency (cycles) — charged on every access.
  std::uint32_t hit_latency = 2;
  /// Home-node directory/L2 lookup latency.
  std::uint32_t dir_latency = 8;
  /// Off-chip fill latency when the home has no copy on chip.
  std::uint32_t dram_latency = 100;
};

/// Result of one CC access.
struct CcAccessResult {
  bool hit = false;
  /// End-to-end latency including protocol round trips (cycles).
  Cost latency = 0;
  /// Protocol messages this access generated.
  std::uint32_t messages = 0;
};

/// The distributed directory + private caches of all cores.
class DirectoryCC {
 public:
  /// `placement` maps lines to their home (directory) cores and must use
  /// the same block size as the caches' line size.  `mesh`, `cost`, and
  /// `placement` are held by reference and must outlive the directory.
  DirectoryCC(const Mesh& mesh, const CostModel& cost,
              const DirCcParams& params, const Placement& placement);

  /// Runs one access's full MSI transaction.
  CcAccessResult access(CoreId core, Addr addr, MemOp op);

  const FastCounters& counters() const noexcept { return counters_; }
  std::uint64_t traffic_bits() const noexcept { return traffic_bits_; }
  Cost total_latency() const noexcept { return total_latency_; }

  /// Registers `sink` (nullable) to receive every protocol message as a
  /// packet (requests on vnet::kMemRequest, data/acks on vnet::kMemReply;
  /// src == dst messages generate no packet) — the contention calibration
  /// pass's capture point.  Must outlive the directory or be unregistered.
  void set_traffic_sink(TrafficSink* sink) noexcept {
    traffic_sink_ = sink;
  }

  /// Replication factor: mean copies per cached line right now.
  double replication_factor() const;
  /// Valid lines summed over all private caches.
  std::uint64_t total_valid_lines() const;
  /// Distinct lines resident anywhere (the effective capacity EM2 keeps
  /// and CC erodes).
  std::uint64_t distinct_resident_lines() const;
  /// Directory storage in bits: per tracked line, 2 state bits + a full
  /// P-bit sharer vector (the "significant portion of the combined size"
  /// the paper cites).
  std::uint64_t directory_bits() const;

 private:
  struct DirEntry {
    MsiState state = MsiState::kInvalid;
    std::vector<CoreId> sharers;  ///< sorted; owner is sharers[0] in M
  };

  Addr line_of(Addr addr) const noexcept {
    return addr >> line_shift_;
  }
  DirEntry& dir_entry(Addr line);
  /// One protocol message src -> dst carrying `payload_bits`; returns its
  /// latency and does the traffic/count accounting.
  Cost send(CoreId src, CoreId dst, std::uint64_t payload_bits,
            Counter counter);
  /// Handles a victim evicted by a private-cache fill.
  void handle_eviction(CoreId core, const CacheAccessResult& fill);

  const Mesh& mesh_;
  const CostModel& cost_;
  DirCcParams params_;
  const Placement& placement_;
  std::uint32_t line_shift_;
  std::vector<std::unique_ptr<Cache>> caches_;
  std::unordered_map<Addr, DirEntry> directory_;
  FastCounters counters_;
  std::uint64_t traffic_bits_ = 0;
  Cost total_latency_ = 0;
  TrafficSink* traffic_sink_ = nullptr;
};

}  // namespace em2
