// Trace-driven directory-CC simulation, mirroring em2/trace_sim.hpp so
// benches can compare the two architectures on identical traces.
//
// Note the core difference being measured: under CC the *thread stays
// put* and lines replicate toward it (multi-message transactions,
// directory state, invalidations); under EM2 the *thread moves* to the
// single copy (one-way context transfer, no directory at all).
#pragma once

#include "coherence/directory.hpp"
#include "placement/placement.hpp"
#include "trace/stream/source.hpp"
#include "trace/trace.hpp"

namespace em2 {

/// Aggregate results of one CC run.
struct CcRunReport {
  CounterSet counters;
  Cost total_latency = 0;
  std::uint64_t traffic_bits = 0;
  double replication_factor = 1.0;
  std::uint64_t directory_bits = 0;
  std::uint64_t distinct_lines = 0;
  std::uint64_t valid_lines = 0;

  double mean_latency_per_access() const noexcept;
  double messages_per_access() const noexcept;
};

/// Runs the MSI directory protocol over `traces` (round-robin thread
/// interleave over TraceSource cursors; thread t issues from its native
/// core — threads do not move under CC).  A non-null `recorder` captures
/// every protocol message as a packet for the contention calibration
/// pass.
CcRunReport run_cc(const TraceSource& traces, const Placement& placement,
                   const Mesh& mesh, const CostModel& cost,
                   const DirCcParams& params,
                   TrafficRecorder* recorder = nullptr);

/// Convenience wrapper over an in-memory TraceSet.
CcRunReport run_cc(const TraceSet& traces, const Placement& placement,
                   const Mesh& mesh, const CostModel& cost,
                   const DirCcParams& params,
                   TrafficRecorder* recorder = nullptr);

}  // namespace em2
