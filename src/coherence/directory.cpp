#include "coherence/directory.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "util/assert.hpp"

namespace em2 {
namespace {

std::uint8_t to_byte(MsiState s) { return static_cast<std::uint8_t>(s); }
MsiState from_byte(std::uint8_t b) { return static_cast<MsiState>(b); }

/// Virtual network a directory-protocol message travels on: data and
/// acknowledgements are responses (kMemReply); everything that solicits
/// work at the receiver is a request (kMemRequest).  Mirrors the
/// request/reply split that keeps the fabric deadlock-free.
int message_vnet(Counter c) {
  switch (c) {
    case Counter::kDataOwner:
    case Counter::kDataHome:
    case Counter::kWbDowngrade:
    case Counter::kPutM:
    case Counter::kInvAck:
    case Counter::kUpgradeAck:
      return vnet::kMemReply;
    default:
      return vnet::kMemRequest;
  }
}

}  // namespace

DirectoryCC::DirectoryCC(const Mesh& mesh, const CostModel& cost,
                         const DirCcParams& params,
                         const Placement& placement)
    : mesh_(mesh), cost_(cost), params_(params), placement_(placement) {
  EM2_ASSERT(std::has_single_bit(params.private_cache.line_bytes),
             "line size must be a power of two");
  line_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(params.private_cache.line_bytes));
  caches_.reserve(static_cast<std::size_t>(mesh_.num_cores()));
  for (CoreId c = 0; c < mesh_.num_cores(); ++c) {
    caches_.push_back(std::make_unique<Cache>(params.private_cache));
  }
}

DirectoryCC::DirEntry& DirectoryCC::dir_entry(Addr line) {
  return directory_[line];
}

Cost DirectoryCC::send(CoreId src, CoreId dst, std::uint64_t payload_bits,
                       Counter counter) {
  counters_.inc(counter);
  counters_.inc(Counter::kMessages);
  traffic_bits_ += payload_bits + cost_.params().header_bits;
  const int vn = message_vnet(counter);
  if (traffic_sink_ != nullptr && src != dst) {
    traffic_sink_->on_packet(src, dst, vn, payload_bits);
  }
  return cost_.message(src, dst, payload_bits, vn);
}

void DirectoryCC::handle_eviction(CoreId core,
                                  const CacheAccessResult& fill) {
  if (!fill.evicted) {
    return;
  }
  const Addr victim = fill.victim_line;
  const CoreId home = placement_.home_of_block(victim);
  DirEntry& entry = dir_entry(victim);
  const MsiState vstate = from_byte(fill.victim_state);
  const std::uint64_t line_bits =
      static_cast<std::uint64_t>(params_.private_cache.line_bytes) * 8;

  auto remove_sharer = [&](CoreId c) {
    entry.sharers.erase(
        std::remove(entry.sharers.begin(), entry.sharers.end(), c),
        entry.sharers.end());
  };

  if (vstate == MsiState::kModified) {
    // PutM: write the dirty line back to the home.
    send(core, home, line_bits, Counter::kPutM);
    remove_sharer(core);
    entry.state = MsiState::kInvalid;
    EM2_ASSERT(entry.sharers.empty(),
               "M line had other sharers in the directory");
  } else if (vstate == MsiState::kShared) {
    // PutS: notify the directory so its sharer vector stays precise.
    send(core, home, 0, Counter::kPutS);
    remove_sharer(core);
    if (entry.sharers.empty()) {
      entry.state = MsiState::kInvalid;
    }
  }
}

CcAccessResult DirectoryCC::access(CoreId core, Addr addr, MemOp op) {
  EM2_ASSERT(core >= 0 && core < mesh_.num_cores(),
             "access from a core outside the mesh");
  counters_.inc(Counter::kAccesses);
  CcAccessResult result;
  const Addr line = line_of(addr);
  const CoreId home = placement_.home_of_block(line);
  Cache& cache = *caches_[static_cast<std::size_t>(core)];
  const auto state_byte = cache.state_of(line);
  const MsiState cstate =
      state_byte ? from_byte(*state_byte) : MsiState::kInvalid;
  const std::uint64_t line_bits =
      static_cast<std::uint64_t>(params_.private_cache.line_bytes) * 8;
  const std::uint64_t addr_bits = cost_.params().addr_bits;

  Cost latency = params_.hit_latency;

  if (op == MemOp::kRead && cstate != MsiState::kInvalid) {
    // Read hit in S or M.
    cache.touch(line);
    counters_.inc(Counter::kHits);
    result.hit = true;
  } else if (op == MemOp::kWrite && cstate == MsiState::kModified) {
    // Write hit in M.
    cache.touch(line);
    counters_.inc(Counter::kHits);
    result.hit = true;
  } else if (op == MemOp::kRead) {
    // Read miss: GetS to the directory.
    counters_.inc(Counter::kMisses);
    latency += send(core, home, addr_bits, Counter::kGetS) + params_.dir_latency;
    DirEntry& entry = dir_entry(line);
    if (entry.state == MsiState::kModified) {
      // Forward to the owner; owner sends data to the requester and a
      // downgrade copy to the home.  Critical path: home->owner->requester.
      EM2_ASSERT(entry.sharers.size() == 1, "M line must have one owner");
      const CoreId owner = entry.sharers[0];
      latency += send(home, owner, addr_bits, Counter::kFwdGetS);
      const Cost to_req = send(owner, core, line_bits, Counter::kDataOwner);
      send(owner, home, line_bits, Counter::kWbDowngrade);
      latency += to_req;
      caches_[static_cast<std::size_t>(owner)]->set_state(
          line, to_byte(MsiState::kShared));
      entry.state = MsiState::kShared;
      if (std::find(entry.sharers.begin(), entry.sharers.end(), core) ==
          entry.sharers.end()) {
        entry.sharers.push_back(core);
      }
    } else {
      if (entry.state == MsiState::kInvalid) {
        latency += params_.dram_latency;  // home fetches from memory
        counters_.inc(Counter::kDramFills);
        entry.state = MsiState::kShared;
        entry.sharers.clear();
      }
      latency += send(home, core, line_bits, Counter::kDataHome);
      if (std::find(entry.sharers.begin(), entry.sharers.end(), core) ==
          entry.sharers.end()) {
        entry.sharers.push_back(core);
      }
    }
    const CacheAccessResult fill =
        cache.fill(line, to_byte(MsiState::kShared), false);
    handle_eviction(core, fill);
  } else {
    // Write miss or upgrade: GetM/Upgrade to the directory.
    counters_.inc(Counter::kMisses);
    const bool upgrade = cstate == MsiState::kShared;
    latency += send(core, home, addr_bits, upgrade ? Counter::kUpgrade : Counter::kGetM) +
               params_.dir_latency;
    DirEntry& entry = dir_entry(line);
    if (entry.state == MsiState::kModified) {
      EM2_ASSERT(entry.sharers.size() == 1, "M line must have one owner");
      const CoreId owner = entry.sharers[0];
      latency += send(home, owner, addr_bits, Counter::kFwdGetM);
      latency += send(owner, core, line_bits, Counter::kDataOwner);
      caches_[static_cast<std::size_t>(owner)]->invalidate(line);
      entry.sharers.clear();
    } else {
      // Invalidate all sharers (other than the requester); acks return to
      // the requester in parallel — the critical path is the slowest one.
      Cost worst_inv = 0;
      for (const CoreId sharer : entry.sharers) {
        if (sharer == core) {
          continue;
        }
        const Cost inv = send(home, sharer, addr_bits, Counter::kInv);
        const Cost ack = send(sharer, core, 0, Counter::kInvAck);
        caches_[static_cast<std::size_t>(sharer)]->invalidate(line);
        worst_inv = std::max(worst_inv, inv + ack);
      }
      latency += worst_inv;
      if (entry.state == MsiState::kInvalid) {
        latency += params_.dram_latency;
        counters_.inc(Counter::kDramFills);
      }
      if (!upgrade) {
        latency += send(home, core, line_bits, Counter::kDataHome);
      } else {
        latency += send(home, core, 0, Counter::kUpgradeAck);
      }
      entry.sharers.clear();
    }
    entry.state = MsiState::kModified;
    entry.sharers.push_back(core);
    const CacheAccessResult fill =
        cache.fill(line, to_byte(MsiState::kModified), true);
    handle_eviction(core, fill);
  }

  result.latency = latency;
  total_latency_ += latency;
  return result;
}

double DirectoryCC::replication_factor() const {
  const std::uint64_t valid = total_valid_lines();
  const std::uint64_t distinct = distinct_resident_lines();
  return distinct == 0 ? 1.0
                       : static_cast<double>(valid) /
                             static_cast<double>(distinct);
}

std::uint64_t DirectoryCC::total_valid_lines() const {
  std::uint64_t total = 0;
  for (const auto& c : caches_) {
    total += c->valid_lines();
  }
  return total;
}

std::uint64_t DirectoryCC::distinct_resident_lines() const {
  std::unordered_set<Addr> distinct;
  // determinism: membership-only — the set's final contents (and the
  // returned size) are independent of directory_ iteration order.
  for (const auto& [line, entry] : directory_) {
    if (entry.state != MsiState::kInvalid && !entry.sharers.empty()) {
      distinct.insert(line);
    }
  }
  return distinct.size();
}

std::uint64_t DirectoryCC::directory_bits() const {
  std::uint64_t tracked = 0;
  // determinism: order-insensitive integer count over the entries.
  for (const auto& [line, entry] : directory_) {
    if (entry.state != MsiState::kInvalid) {
      ++tracked;
    }
  }
  return tracked * (2 + static_cast<std::uint64_t>(mesh_.num_cores()));
}

}  // namespace em2
