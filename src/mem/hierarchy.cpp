#include "mem/hierarchy.hpp"

#include "util/assert.hpp"

namespace em2 {

CacheHierarchy::CacheHierarchy(const CacheParams& l1, const CacheParams& l2,
                               const HierarchyLatency& lat)
    : l1_(l1), l2_(l2), lat_(lat) {
  EM2_ASSERT(l1.line_bytes == l2.line_bytes,
             "L1 and L2 must share a line size");
}

HierarchyResult CacheHierarchy::access(Addr byte_addr, MemOp op) {
  ++accesses_;
  HierarchyResult r;
  const Addr line = l1_.line_of(byte_addr);

  // L1 probe.
  if (l1_.contains(line)) {
    l1_.access(byte_addr, op);  // counts the hit, updates LRU/dirty
    r.level = HitLevel::kL1;
    r.latency = lat_.l1;
    return r;
  }

  // L2 probe; L2 hit promotes the line into L1.
  const bool l2_hit = l2_.contains(line);
  if (l2_hit) {
    l2_.touch(line);
  }

  // Allocate into L1; the victim (if dirty or simply valid) moves to L2.
  const CacheAccessResult l1_fill = l1_.access(byte_addr, op);
  if (l1_fill.evicted) {
    const CacheAccessResult l2_fill =
        l2_.fill(l1_fill.victim_line, l1_fill.victim_state,
                 l1_fill.writeback);
    if (l2_fill.evicted && l2_fill.writeback) {
      ++dram_writebacks_;
      r.dram_writeback = true;
    }
  }

  if (l2_hit) {
    r.level = HitLevel::kL2;
    r.latency = lat_.l1 + lat_.l2;
  } else {
    // DRAM fill; install in L2 as well (mirrors a fill path that leaves a
    // copy in L2 so future L1 evictions hit there).
    const CacheAccessResult l2_fill = l2_.fill(line, 0, false);
    if (l2_fill.evicted && l2_fill.writeback) {
      ++dram_writebacks_;
      r.dram_writeback = true;
    }
    ++dram_fills_;
    r.level = HitLevel::kDram;
    r.latency = lat_.l1 + lat_.l2 + lat_.dram;
  }
  return r;
}

}  // namespace em2
