// Per-core two-level data-cache hierarchy — the paper's Figure 2 setup
// ("16KB L1 + 64KB L2 data caches" per core).
//
// Organization: L2 is exclusive-ish victim-style in spirit but modelled
// simply as a second lookup level: accesses probe L1, then L2; misses fill
// both (L1 victim falls back into L2).  Under EM2 each line exists in the
// hierarchy of exactly one core (its home), so no coherence machinery is
// needed here — that is precisely the paper's point.
#pragma once

#include <cstdint>

#include "mem/cache.hpp"
#include "util/types.hpp"

namespace em2 {

/// Latency parameters of a hierarchy access (cycles).
struct HierarchyLatency {
  std::uint32_t l1 = 2;
  std::uint32_t l2 = 8;
  std::uint32_t dram = 100;
};

/// Where an access was served from.
enum class HitLevel : std::uint8_t { kL1 = 0, kL2 = 1, kDram = 2 };

/// Result of a hierarchy access.
struct HierarchyResult {
  HitLevel level = HitLevel::kL1;
  /// Total access latency including fill on miss.
  std::uint32_t latency = 0;
  /// A dirty line left the hierarchy (DRAM writeback traffic).
  bool dram_writeback = false;
};

/// Two-level per-core cache hierarchy.
class CacheHierarchy {
 public:
  CacheHierarchy(const CacheParams& l1, const CacheParams& l2,
                 const HierarchyLatency& lat);

  /// Performs a data access at this core.  Misses allocate in both levels;
  /// the L1 victim is installed into L2 (its dirtiness preserved).
  HierarchyResult access(Addr byte_addr, MemOp op);

  const Cache& l1() const noexcept { return l1_; }
  const Cache& l2() const noexcept { return l2_; }

  std::uint64_t accesses() const noexcept { return accesses_; }
  std::uint64_t dram_fills() const noexcept { return dram_fills_; }
  std::uint64_t dram_writebacks() const noexcept { return dram_writebacks_; }

 private:
  Cache l1_;
  Cache l2_;
  HierarchyLatency lat_;
  std::uint64_t accesses_ = 0;
  std::uint64_t dram_fills_ = 0;
  std::uint64_t dram_writebacks_ = 0;
};

}  // namespace em2
