#include "mem/cache.hpp"

#include <bit>

#include "util/assert.hpp"

namespace em2 {

Cache::Cache(const CacheParams& params) : params_(params) {
  EM2_ASSERT(std::has_single_bit(params.line_bytes),
             "line size must be a power of two");
  EM2_ASSERT(params.ways >= 1, "cache must have at least one way");
  EM2_ASSERT(params.size_bytes % (params.ways * params.line_bytes) == 0,
             "cache size must be divisible by ways * line size");
  num_sets_ = params.size_bytes / (params.ways * params.line_bytes);
  EM2_ASSERT(num_sets_ >= 1, "cache must have at least one set");
  line_shift_ = static_cast<std::uint32_t>(
      std::countr_zero(params.line_bytes));
  lines_.resize(static_cast<std::size_t>(num_sets_) * params.ways);
}

Cache::Line* Cache::lookup(Addr line_addr) noexcept {
  const std::size_t base = set_index(line_addr) * params_.ways;
  for (std::uint32_t w = 0; w < params_.ways; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.line_addr == line_addr) {
      return &line;
    }
  }
  return nullptr;
}

const Cache::Line* Cache::lookup(Addr line_addr) const noexcept {
  return const_cast<Cache*>(this)->lookup(line_addr);
}

bool Cache::contains(Addr line_addr) const noexcept {
  return lookup(line_addr) != nullptr;
}

std::optional<std::uint8_t> Cache::state_of(Addr line_addr) const noexcept {
  const Line* line = lookup(line_addr);
  if (line == nullptr) {
    return std::nullopt;
  }
  return line->state;
}

CacheAccessResult Cache::access(Addr byte_addr, MemOp op,
                                std::uint8_t fill_state) {
  const Addr line_addr = line_of(byte_addr);
  if (Line* line = lookup(line_addr)) {
    ++hits_;
    line->lru_stamp = ++tick_;
    if (op == MemOp::kWrite) {
      line->dirty = true;
    }
    CacheAccessResult r;
    r.hit = true;
    return r;
  }
  ++misses_;
  CacheAccessResult r = fill(line_addr, fill_state, op == MemOp::kWrite);
  r.hit = false;
  return r;
}

bool Cache::touch(Addr line_addr) {
  if (Line* line = lookup(line_addr)) {
    line->lru_stamp = ++tick_;
    return true;
  }
  return false;
}

CacheAccessResult Cache::fill(Addr line_addr, std::uint8_t state,
                              bool dirty) {
  CacheAccessResult r;
  if (Line* line = lookup(line_addr)) {
    // Re-fill of a resident line: refresh state/dirtiness only.
    line->state = state;
    line->dirty = line->dirty || dirty;
    line->lru_stamp = ++tick_;
    return r;
  }
  const std::size_t base = set_index(line_addr) * params_.ways;
  Line* victim = nullptr;
  for (std::uint32_t w = 0; w < params_.ways; ++w) {
    Line& line = lines_[base + w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (victim == nullptr || line.lru_stamp < victim->lru_stamp) {
      victim = &line;
    }
  }
  EM2_ASSERT(victim != nullptr, "a set must always yield a victim");
  if (victim->valid) {
    r.evicted = true;
    r.victim_line = victim->line_addr;
    r.victim_state = victim->state;
    r.writeback = victim->dirty;
    ++evictions_;
    if (victim->dirty) {
      ++writebacks_;
    }
  } else {
    ++valid_lines_;
  }
  victim->valid = true;
  victim->line_addr = line_addr;
  victim->dirty = dirty;
  victim->state = state;
  victim->lru_stamp = ++tick_;
  return r;
}

bool Cache::set_state(Addr line_addr, std::uint8_t state) {
  if (Line* line = lookup(line_addr)) {
    line->state = state;
    return true;
  }
  return false;
}

std::optional<bool> Cache::invalidate(Addr line_addr) {
  if (Line* line = lookup(line_addr)) {
    const bool dirty = line->dirty;
    line->valid = false;
    line->dirty = false;
    line->state = 0;
    --valid_lines_;
    return dirty;
  }
  return std::nullopt;
}

}  // namespace em2
