// Set-associative cache with true-LRU replacement.
//
// The cache is line-addressed and *stateful but dataless*: it tracks
// presence, dirtiness, and an opaque per-line protocol state byte (used by
// the directory-coherence baseline for MSI states), but not data values —
// simulated data lives in the functional memory of the execution engine.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/types.hpp"

namespace em2 {

/// Geometry of one cache level.  The line size must be a power of two;
/// the set count (size / (ways * line)) may be any positive integer.
struct CacheParams {
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t ways = 4;
  std::uint32_t line_bytes = 64;
};

/// Result of a lookup-with-allocation.
struct CacheAccessResult {
  bool hit = false;
  /// Valid line evicted to make room (only on allocating misses).
  bool evicted = false;
  /// The evicted line was dirty and needs a writeback.
  bool writeback = false;
  /// Line address (byte address >> line shift) of the victim.
  Addr victim_line = 0;
  /// Protocol state of the victim at eviction.
  std::uint8_t victim_state = 0;
};

/// One level of set-associative cache.
class Cache {
 public:
  explicit Cache(const CacheParams& params);

  std::uint32_t num_sets() const noexcept { return num_sets_; }
  std::uint32_t ways() const noexcept { return params_.ways; }
  std::uint32_t line_bytes() const noexcept { return params_.line_bytes; }

  /// Maps a byte address to its line address.
  Addr line_of(Addr byte_addr) const noexcept {
    return byte_addr >> line_shift_;
  }

  /// Presence test without touching replacement state.
  bool contains(Addr line_addr) const noexcept;

  /// Protocol state of a resident line (nullopt if absent).  Does not
  /// update LRU.
  std::optional<std::uint8_t> state_of(Addr line_addr) const noexcept;

  /// Full access: on hit, updates LRU and dirtiness (writes dirty the
  /// line).  On miss, allocates the line (state = `fill_state`), evicting
  /// the LRU victim if the set is full.  This is the common
  /// "access-and-fill" path of a private cache.
  CacheAccessResult access(Addr byte_addr, MemOp op,
                           std::uint8_t fill_state = 0);

  /// Lookup that never allocates; updates LRU on hit.  Returns hit.
  bool touch(Addr line_addr);

  /// Inserts (or re-states) a line without an access, as a coherence fill
  /// does.  Returns eviction information for the victim, if any.
  CacheAccessResult fill(Addr line_addr, std::uint8_t state, bool dirty);

  /// Updates the protocol state of a resident line; returns false if the
  /// line is absent.
  bool set_state(Addr line_addr, std::uint8_t state);

  /// Removes a line (coherence invalidation).  Returns the line's dirty
  /// flag, or nullopt if it was not resident.
  std::optional<bool> invalidate(Addr line_addr);

  /// Number of currently valid lines (effective occupancy).
  std::uint64_t valid_lines() const noexcept { return valid_lines_; }
  std::uint64_t capacity_lines() const noexcept {
    return static_cast<std::uint64_t>(num_sets_) * params_.ways;
  }

  // Lifetime statistics.
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t writebacks() const noexcept { return writebacks_; }

 private:
  struct Line {
    Addr line_addr = 0;
    bool valid = false;
    bool dirty = false;
    std::uint8_t state = 0;
    std::uint64_t lru_stamp = 0;
  };

  // Modulo (not mask) so non-power-of-two set counts are legal: the 80KB
  // combined-capacity cache of the CC baseline has 160 sets.
  std::size_t set_index(Addr line_addr) const noexcept {
    return static_cast<std::size_t>(line_addr %
                                    static_cast<Addr>(num_sets_));
  }
  Line* lookup(Addr line_addr) noexcept;
  const Line* lookup(Addr line_addr) const noexcept;

  CacheParams params_;
  std::uint32_t num_sets_;
  std::uint32_t line_shift_;
  std::vector<Line> lines_;  // num_sets x ways, set-major
  std::uint64_t tick_ = 0;   // LRU clock
  std::uint64_t valid_lines_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace em2
