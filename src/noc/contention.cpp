#include "noc/contention.hpp"

#include <algorithm>
#include <cmath>

#include "noc/reliable.hpp"
#include "util/assert.hpp"

namespace em2 {

double md1_wait_factor(double rho, double max_utilization) noexcept {
  if (std::isnan(rho) || rho <= 0.0) {
    return 0.0;
  }
  // The never-inf/NaN contract holds even for a caller-supplied clamp at
  // or past 1.0: the effective cap stays strictly below the pole.
  const double cap = std::min(max_utilization, 1.0 - 1e-9);
  const double clamped = std::min(rho, cap);
  return clamped / (2.0 * (1.0 - clamped));
}

HopLatencies corrected_hop_latencies(
    const CostModelParams& params,
    const std::array<VnetLoad, vnet::kNumVnets>& loads,
    const ContentionParams& cparams) {
  HopLatencies hop;
  const double base = static_cast<double>(params.per_hop_cycles);
  for (std::size_t vn = 0; vn < loads.size(); ++vn) {
    const VnetLoad& l = loads[vn];
    // Pollaczek-Khinchine effective service of the competing mix; falls
    // back to one flit-cycle when the moments are degenerate.
    const double service =
        (std::isfinite(l.mean_service) && l.mean_service > 0.0 &&
         std::isfinite(l.mean_service_sq) && l.mean_service_sq > 0.0)
            ? l.mean_service_sq / l.mean_service
            : 1.0;
    hop.cycles[vn] =
        base +
        md1_wait_factor(l.utilization, cparams.max_utilization) * service;
  }
  return hop;
}

std::array<VnetLoad, vnet::kNumVnets> analyze_offered_load(
    const Mesh& mesh, const CostModel& cost,
    const std::vector<TrafficEvent>& events) {
  std::array<VnetLoad, vnet::kNumVnets> loads{};
  if (events.empty()) {
    return loads;
  }
  const auto links =
      static_cast<std::size_t>(mesh.num_cores()) * kNumDirections;
  // Per directed link: flit-cycles offered (total across vnets — physical
  // bandwidth is shared — and per vnet, for the flit-weighted
  // aggregation) plus the arrival-weighted service moments of the FULL
  // mix crossing the link, since a packet queues behind whatever is in
  // service there regardless of vnet.
  std::vector<double> link_total(links, 0.0);
  std::vector<double> link_by_vnet(links * vnet::kNumVnets, 0.0);
  std::vector<double> link_arrivals(links, 0.0);
  std::vector<double> link_m1(links, 0.0);
  std::vector<double> link_m2(links, 0.0);
  Cycle makespan = 1;
  for (const TrafficEvent& e : events) {
    EM2_ASSERT(e.vnet >= 0 && e.vnet < vnet::kNumVnets,
               "traffic event vnet out of range");
    const auto vn = static_cast<std::size_t>(e.vnet);
    const double service = static_cast<double>(cost.flits_for(e.payload_bits));
    const std::int32_t hops = mesh.hops(e.src, e.dst);
    // Walk the XY path, charging the packet's serialization time to every
    // directed link it occupies.
    CoreId at = e.src;
    while (at != e.dst) {
      const Direction dir = mesh.route_xy(at, e.dst);
      const std::size_t link =
          static_cast<std::size_t>(at) * kNumDirections +
          static_cast<std::size_t>(dir);
      link_total[link] += service;
      link_by_vnet[link * vnet::kNumVnets + vn] += service;
      link_arrivals[link] += 1.0;
      link_m1[link] += service;
      link_m2[link] += service * service;
      at = mesh.neighbor(at, dir);
    }
    // The last injection plus its own delivery bounds the window the
    // offered flit-cycles must fit into.
    const Cycle done =
        e.when + cost.packet_latency(hops, e.payload_bits) + 1;
    makespan = std::max(makespan, done);
  }
  const double window = static_cast<double>(makespan);
  for (std::size_t vn = 0; vn < loads.size(); ++vn) {
    // Aggregate over the links this vnet's flits use, weighted by its own
    // flit-cycles there: the total occupancy it queues behind and the
    // competing mix's service moments on those links.
    double seen_num = 0.0;
    double m1_num = 0.0;
    double m2_num = 0.0;
    double den = 0.0;
    for (std::size_t link = 0; link < links; ++link) {
      const double own = link_by_vnet[link * vnet::kNumVnets + vn];
      if (own <= 0.0) {
        continue;
      }
      seen_num += own * (link_total[link] / window);
      m1_num += own * (link_m1[link] / link_arrivals[link]);
      m2_num += own * (link_m2[link] / link_arrivals[link]);
      den += own;
    }
    if (den <= 0.0) {
      continue;  // vnet carried nothing: zero utilization, unit service
    }
    loads[vn].utilization = seen_num / den;
    loads[vn].mean_service = m1_num / den;
    loads[vn].mean_service_sq = m2_num / den;
  }
  return loads;
}

void prepare_calibration_events(std::vector<TrafficEvent>& events,
                                std::uint64_t max_packets) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TrafficEvent& a, const TrafficEvent& b) {
                     return a.when < b.when;
                   });
  if (events.size() > max_packets) {
    events.resize(static_cast<std::size_t>(max_packets));
  }
}

namespace {

/// The lossy replay leg: same injection schedule and closed-loop window,
/// but every packet goes through the reliable transport so drops, ACKs,
/// and retransmissions load the measured fabric.
CalibrationReport replay_on_fabric_lossy(
    const Mesh& mesh, const CostModel& cost,
    const std::vector<TrafficEvent>& events, const CalibrationOptions& opts,
    const FaultInjector& faults) {
  ReliableNetwork net(mesh, opts.network, faults);
  CalibrationReport report;
  std::size_t next = 0;
  std::uint64_t sent = 0;
  while (next < events.size() || !net.idle()) {
    if (net.now() >= opts.max_cycles) {
      report.drained = false;
      break;
    }
    while (next < events.size() && events[next].when <= net.now() &&
           (opts.max_outstanding == 0 ||
            net.live_messages() < opts.max_outstanding)) {
      const TrafficEvent& e = events[next];
      net.send(e.src, e.dst, e.vnet,
               static_cast<std::int32_t>(cost.flits_for(e.payload_bits)));
      ++sent;
      ++next;
    }
    net.step();
  }
  for (const Delivery& d : net.drain_delivered()) {
    report.measured_total_latency += d.delivered - d.injected;
  }
  report.packets = sent;
  report.cycles = net.now();
  report.utilization = net.utilization();
  report.drops = net.drops();
  report.retransmissions = net.retransmissions();
  return report;
}

}  // namespace

CalibrationReport replay_on_fabric(const Mesh& mesh, const CostModel& cost,
                                   const std::vector<TrafficEvent>& events,
                                   const CalibrationOptions& opts,
                                   const FaultInjector* faults) {
  if (faults != nullptr && faults->spec().drop_rate > 0.0) {
    return replay_on_fabric_lossy(mesh, cost, events, opts, *faults);
  }
  Network net(mesh, opts.network);
  CalibrationReport report;
  std::size_t next = 0;
  std::uint64_t id = 0;
  while (next < events.size() || !net.idle()) {
    if (net.now() >= opts.max_cycles) {
      report.drained = false;
      break;
    }
    while (next < events.size() && events[next].when <= net.now() &&
           (opts.max_outstanding == 0 ||
            net.packets_in_flight() < opts.max_outstanding)) {
      const TrafficEvent& e = events[next];
      Packet p;
      p.id = id++;
      p.src = e.src;
      p.dst = e.dst;
      p.vnet = e.vnet;
      p.flits = static_cast<std::int32_t>(cost.flits_for(e.payload_bits));
      net.inject(p);
      ++next;
    }
    net.step();
  }
  for (const Delivery& d : net.drain_delivered()) {
    report.measured_total_latency += d.delivered - d.injected;
  }
  report.packets = id;
  report.cycles = net.now();
  report.utilization = net.utilization();
  return report;
}

Cost predict_total_latency(const CostModel& cost,
                           const std::vector<TrafficEvent>& events) {
  Cost total = 0;
  const Mesh& mesh = cost.mesh();
  for (const TrafficEvent& e : events) {
    // +1: the fabric's ejection cycle (a delivered packet leaves through
    // the local port one cycle after its last hop), so the prediction is
    // in the same units as measured_total_latency.
    total += cost.packet_latency_on(e.vnet, mesh.hops(e.src, e.dst),
                                    e.payload_bits) + 1;
  }
  return total;
}

}  // namespace em2
