// Cycle-level 2-D mesh network with wormhole routing and virtual channels.
//
// Design point (matches the paper's deadlock-freedom argument):
//   * XY dimension-ordered routing (deadlock-free within a virtual network).
//   * One virtual channel per *virtual network* (vnet); EM2-RA requires six
//     vnets in total (Section 3): guest migrations, native/eviction
//     migrations, remote-access requests, remote-access replies, memory
//     requests, memory replies.  Requests and replies travel on different
//     vnets so protocol-level request-reply cycles cannot deadlock the
//     fabric, and evictions travel separately from guest migrations so an
//     evicted thread can always drain to its (reserved) native context.
//   * Credit-based flow control: a flit advances only if the downstream
//     input FIFO of its vnet has a free slot.  Ejection (local port) is an
//     infinite sink — consumption is guaranteed by construction, as the
//     EM2 native-context reservation demands.
//
// The model is single-threaded and deterministic: round-robin arbitration
// with rotating priority, one flit per output port per cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "geom/mesh.hpp"
#include "noc/vnet.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace em2 {

/// Configuration of the cycle-level mesh.
struct NetworkParams {
  std::int32_t num_vnets = vnet::kNumVnets;
  /// Input FIFO depth per (port, vnet), in flits.
  std::int32_t vc_depth = 4;
  /// Output arbitration probes only the (in-port, vnet) candidates whose
  /// non-empty FIFO's *front flit actually wants this output* — a
  /// per-(router, output) want bitmask (bit = in_port * num_vnets + vnet)
  /// maintained in O(1) at every front-flit change (a head wants its XY
  /// route, a body wants the output its head locked), instead of scanning
  /// all kNumDirections x num_vnets candidates per output per cycle.  The
  /// rotating round-robin priority walks the surviving candidates in the
  /// exact order the exhaustive scan would have granted them (skipped
  /// candidates are exactly those the scan rejects with no side effect),
  /// so arbitration is bit-identical (tests diff the two step for step);
  /// only the probing cost changes — the win that makes the kMeasured
  /// calibration replay ~10x cheaper.  false retains the exhaustive probe
  /// as the reference arbiter.
  bool occupancy_mask = true;
};

/// A packet to inject.  `flits` >= 1 (head carries the header).
struct Packet {
  std::uint64_t id = 0;
  CoreId src = 0;
  CoreId dst = 0;
  std::int32_t vnet = 0;
  std::int32_t flits = 1;
  /// Caller-owned token; returned on delivery (protocol engines map it to
  /// their transaction state).
  std::uint64_t token = 0;
};

/// A delivered packet with timing information.
struct Delivery {
  Packet packet;
  Cycle injected = 0;
  Cycle delivered = 0;
};

/// Per-vnet link-utilization summary of a cycle-level run, measured from
/// the per-(link, vnet) flit counters the fabric keeps.  Utilization of a
/// directed inter-router link is flits traversed / cycles elapsed (each
/// link moves at most one flit per cycle, so this is channel occupancy in
/// [0, 1]).  Four per-vnet aggregations:
///   mean      — vnet's own occupancy across all directed links
///   weighted  — flit-weighted mean of the vnet's own occupancy
///   seen      — flit-weighted mean of the TOTAL occupancy (all vnets) on
///               the links the vnet's flits traversed: vnets share
///               physical link bandwidth, so this is the congestion a
///               typical flit of the vnet queues behind — it feeds the
///               M/D/1 correction (noc/contention.hpp)
///   peak      — the vnet's busiest single link (hotspot indicator)
struct FabricUtilization {
  Cycle cycles = 0;           ///< measurement window (cycles stepped)
  std::int32_t num_links = 0; ///< directed inter-router links in the mesh
  std::vector<double> mean_by_vnet;
  std::vector<double> weighted_by_vnet;
  std::vector<double> seen_by_vnet;
  std::vector<double> peak_by_vnet;
  /// Link traversals (flit-hops) per vnet over the window.
  std::vector<std::uint64_t> flits_by_vnet;
  /// Packets lost at ejection per vnet (fault injection; always zero on
  /// the raw fabric — the reliable transport layer fills these in).  A
  /// dropped packet still consumed every link it traversed, so its load
  /// is already inside the occupancy numbers above.
  std::vector<std::uint64_t> dropped_by_vnet;
  /// Retransmitted packets per vnet (beyond each first attempt) — the
  /// recovery load the cost correction prices into the tables.
  std::vector<std::uint64_t> retransmitted_by_vnet;
  double peak = 0.0;  ///< max over all (link, vnet) pairs
};

/// Cycle-level mesh network.  Usage: inject() any number of packets, call
/// step() once per cycle, consume deliveries via drain_delivered().
class Network {
 public:
  Network(const Mesh& mesh, const NetworkParams& params);

  /// Queues a packet for injection at its source (source queues are
  /// unbounded; backpressure begins at the first router FIFO).
  void inject(const Packet& packet);

  /// Advances the fabric one cycle.
  void step();

  /// Runs until all traffic drains or `max_cycles` elapse; returns true if
  /// drained.
  bool run_until_drained(Cycle max_cycles);

  /// Packets delivered since the last drain (move-returns, clears queue).
  std::vector<Delivery> drain_delivered();

  Cycle now() const noexcept { return now_; }
  bool idle() const noexcept { return in_flight_ == 0; }
  std::uint64_t packets_in_flight() const noexcept { return in_flight_; }

  /// Total flit-hops traversed (a first-order dynamic-energy proxy: the
  /// paper's power argument counts context bits crossing the network).
  std::uint64_t flit_hops() const noexcept { return flit_hops_; }
  std::uint64_t packets_delivered() const noexcept { return delivered_count_; }

  /// Flits that traversed the directed link (node -> neighbor in `out`)
  /// on `vn` since construction.  Ejection (kLocal) is not a link.
  std::uint64_t link_flits(CoreId node, Direction out, int vn) const {
    return link_flits_[fifo_index(node, static_cast<int>(out), vn)];
  }

  /// Aggregates the per-(link, vnet) flit counters over the cycles stepped
  /// so far; the calibration layer feeds the result into the M/D/1
  /// correction (noc/contention.hpp).  Zero cycles yields all-zero
  /// utilizations.
  FabricUtilization utilization() const;

  /// End-to-end packet latency statistics per vnet.
  const RunningStat& latency_stat(std::int32_t vn) const {
    return latency_[static_cast<std::size_t>(vn)];
  }

  /// Consecutive cycles in which traffic was in flight but no flit moved.
  /// Non-zero transients are normal under backpressure; a large value
  /// (>> diameter * depth) indicates deadlock — tests assert it stays 0 at
  /// quiescence.
  Cycle stalled_cycles() const noexcept { return stalled_cycles_; }

 private:
  struct Flit {
    std::uint64_t packet_index;  // into packets_
    bool head = false;
    bool tail = false;
    /// Cycle the flit entered its current FIFO; it may move again only in
    /// a strictly later cycle (minimum one cycle per hop, and no
    /// multi-hop teleporting within a single step()).
    Cycle arrived = 0;
  };

  struct PacketState {
    Packet packet;
    Cycle injected = 0;
  };

  // One FIFO per (node, port, vnet).  Port 0 (kLocal) holds flits waiting
  // for injection arbitration at the source router.
  struct VcFifo {
    std::deque<Flit> q;
    // Wormhole lock: while a packet is streaming through an output, the
    // (output port, vnet) pair is reserved for it until the tail passes.
  };

  std::size_t fifo_index(CoreId node, int port, int vn) const noexcept;
  bool fifo_has_space(CoreId node, int port, int vn) const noexcept;
  /// Bit of (port, vn) inside a per-node candidate mask.
  std::uint64_t candidate_bit(int port, int vn) const noexcept {
    return std::uint64_t{1}
           << (static_cast<std::uint32_t>(port) *
                   static_cast<std::uint32_t>(params_.num_vnets) +
               static_cast<std::uint32_t>(vn));
  }
  /// Attempts to grant output (node, out) to candidate `cand`
  /// (= in_port * num_vnets + vn).  Returns true iff a flit moved (the
  /// output is then done for this cycle).  Shared verbatim by the masked
  /// and exhaustive arbiters so they can only differ in probing cost.
  bool try_grant(CoreId node, int out, Direction out_dir, CoreId next,
                 std::uint32_t cand, std::size_t rr_index,
                 bool& any_movement);
  /// The output the front flit of (node, port, vn) heads for: a head
  /// flit's XY route, a body/tail flit's wormhole-locked output.
  int front_want(CoreId node, int vn, const Flit& front) const;
  /// Registers a fresh front flit in the want masks (fifo just became
  /// non-empty, or its front changed after a pop).
  void set_front_want(CoreId node, int port, int vn, const Flit& front);

  Mesh mesh_;
  NetworkParams params_;
  std::vector<VcFifo> fifos_;  // node x port x vnet
  // Output locks: for each (node, out-port, vnet), the packet currently
  // streaming, or UINT64_MAX.
  std::vector<std::uint64_t> out_lock_;
  // Rotating round-robin priority per (node, out-port).
  std::vector<std::uint32_t> rr_state_;
  std::vector<PacketState> packets_;
  std::vector<Delivery> delivered_;
  std::vector<RunningStat> latency_;
  /// Flit traversals per (node, out-port, vnet); same layout as fifos_.
  /// Only non-local ports accumulate (ejection is not a shared resource).
  std::vector<std::uint64_t> link_flits_;
  /// Per-node occupancy bitmask: bit (in_port * num_vnets + vn) set iff
  /// that input FIFO is non-empty.  Maintained on every push/pop so the
  /// masked arbiter can skip whole idle routers without touching their
  /// FIFOs.  Always equals the union of the node's five want masks.
  std::vector<std::uint64_t> occupancy_;
  /// Per-(node, output) want bitmask, same bit layout: the candidates
  /// whose front flit heads for this output.  Every non-empty FIFO has
  /// its bit in exactly one output's mask; maintained at front changes.
  std::vector<std::uint64_t> want_;
  /// Per-step scratch, same bit layout: FIFOs that already moved a flit
  /// this cycle (an input FIFO feeds the switch at most one flit/cycle).
  std::vector<std::uint64_t> popped_;
  Cycle now_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t flit_hops_ = 0;
  std::uint64_t delivered_count_ = 0;
  Cycle stalled_cycles_ = 0;
};

}  // namespace em2
