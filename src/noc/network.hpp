// Cycle-level 2-D mesh network with wormhole routing and virtual channels.
//
// Design point (matches the paper's deadlock-freedom argument):
//   * XY dimension-ordered routing (deadlock-free within a virtual network).
//   * One virtual channel per *virtual network* (vnet); EM2-RA requires six
//     vnets in total (Section 3): guest migrations, native/eviction
//     migrations, remote-access requests, remote-access replies, memory
//     requests, memory replies.  Requests and replies travel on different
//     vnets so protocol-level request-reply cycles cannot deadlock the
//     fabric, and evictions travel separately from guest migrations so an
//     evicted thread can always drain to its (reserved) native context.
//   * Credit-based flow control: a flit advances only if the downstream
//     input FIFO of its vnet has a free slot.  Ejection (local port) is an
//     infinite sink — consumption is guaranteed by construction, as the
//     EM2 native-context reservation demands.
//
// The model is single-threaded and deterministic: round-robin arbitration
// with rotating priority, one flit per output port per cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "geom/mesh.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace em2 {

/// Virtual-network identifiers used by the EM2 protocol family.  The NoC
/// itself treats vnets opaquely; these constants document the convention.
namespace vnet {
inline constexpr int kMigrationGuest = 0;   ///< thread migrations to guest contexts
inline constexpr int kMigrationNative = 1;  ///< evictions: migrations to native contexts
inline constexpr int kRemoteRequest = 2;    ///< EM2-RA remote-access requests
inline constexpr int kRemoteReply = 3;      ///< EM2-RA remote-access replies
inline constexpr int kMemRequest = 4;       ///< cache-miss requests to memory controllers
inline constexpr int kMemReply = 5;         ///< memory controller replies
inline constexpr int kNumVnets = 6;
}  // namespace vnet

/// Configuration of the cycle-level mesh.
struct NetworkParams {
  std::int32_t num_vnets = vnet::kNumVnets;
  /// Input FIFO depth per (port, vnet), in flits.
  std::int32_t vc_depth = 4;
};

/// A packet to inject.  `flits` >= 1 (head carries the header).
struct Packet {
  std::uint64_t id = 0;
  CoreId src = 0;
  CoreId dst = 0;
  std::int32_t vnet = 0;
  std::int32_t flits = 1;
  /// Caller-owned token; returned on delivery (protocol engines map it to
  /// their transaction state).
  std::uint64_t token = 0;
};

/// A delivered packet with timing information.
struct Delivery {
  Packet packet;
  Cycle injected = 0;
  Cycle delivered = 0;
};

/// Cycle-level mesh network.  Usage: inject() any number of packets, call
/// step() once per cycle, consume deliveries via drain_delivered().
class Network {
 public:
  Network(const Mesh& mesh, const NetworkParams& params);

  /// Queues a packet for injection at its source (source queues are
  /// unbounded; backpressure begins at the first router FIFO).
  void inject(const Packet& packet);

  /// Advances the fabric one cycle.
  void step();

  /// Runs until all traffic drains or `max_cycles` elapse; returns true if
  /// drained.
  bool run_until_drained(Cycle max_cycles);

  /// Packets delivered since the last drain (move-returns, clears queue).
  std::vector<Delivery> drain_delivered();

  Cycle now() const noexcept { return now_; }
  bool idle() const noexcept { return in_flight_ == 0; }
  std::uint64_t packets_in_flight() const noexcept { return in_flight_; }

  /// Total flit-hops traversed (a first-order dynamic-energy proxy: the
  /// paper's power argument counts context bits crossing the network).
  std::uint64_t flit_hops() const noexcept { return flit_hops_; }
  std::uint64_t packets_delivered() const noexcept { return delivered_count_; }

  /// End-to-end packet latency statistics per vnet.
  const RunningStat& latency_stat(std::int32_t vn) const {
    return latency_[static_cast<std::size_t>(vn)];
  }

  /// Consecutive cycles in which traffic was in flight but no flit moved.
  /// Non-zero transients are normal under backpressure; a large value
  /// (>> diameter * depth) indicates deadlock — tests assert it stays 0 at
  /// quiescence.
  Cycle stalled_cycles() const noexcept { return stalled_cycles_; }

 private:
  struct Flit {
    std::uint64_t packet_index;  // into packets_
    bool head = false;
    bool tail = false;
    /// Cycle the flit entered its current FIFO; it may move again only in
    /// a strictly later cycle (minimum one cycle per hop, and no
    /// multi-hop teleporting within a single step()).
    Cycle arrived = 0;
  };

  struct PacketState {
    Packet packet;
    Cycle injected = 0;
  };

  // One FIFO per (node, port, vnet).  Port 0 (kLocal) holds flits waiting
  // for injection arbitration at the source router.
  struct VcFifo {
    std::deque<Flit> q;
    // Wormhole lock: while a packet is streaming through an output, the
    // (output port, vnet) pair is reserved for it until the tail passes.
  };

  std::size_t fifo_index(CoreId node, int port, int vn) const noexcept;
  bool fifo_has_space(CoreId node, int port, int vn) const noexcept;

  Mesh mesh_;
  NetworkParams params_;
  std::vector<VcFifo> fifos_;  // node x port x vnet
  // Output locks: for each (node, out-port, vnet), the packet currently
  // streaming, or UINT64_MAX.
  std::vector<std::uint64_t> out_lock_;
  // Rotating round-robin priority per (node, out-port).
  std::vector<std::uint32_t> rr_state_;
  std::vector<PacketState> packets_;
  std::vector<Delivery> delivered_;
  std::vector<RunningStat> latency_;
  Cycle now_ = 0;
  std::uint64_t in_flight_ = 0;
  std::uint64_t flit_hops_ = 0;
  std::uint64_t delivered_count_ = 0;
  Cycle stalled_cycles_ = 0;
};

}  // namespace em2
