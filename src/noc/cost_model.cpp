#include "noc/cost_model.hpp"

#include "util/assert.hpp"

namespace em2 {

CostModel::CostModel(const Mesh& mesh, const CostModelParams& params)
    : mesh_(mesh), params_(params) {
  EM2_ASSERT(params.link_width_bits > 0, "link width must be positive");
  EM2_ASSERT(params.per_hop_cycles > 0, "per-hop latency must be positive");
  // Precompute the hot-path latency tables over every possible hop count.
  const auto table_size = static_cast<std::size_t>(mesh_.diameter()) + 1;
  migration_by_hops_.reserve(table_size);
  remote_read_by_hops_.reserve(table_size);
  remote_write_by_hops_.reserve(table_size);
  for (std::size_t h = 0; h < table_size; ++h) {
    const auto hops = static_cast<std::int32_t>(h);
    migration_by_hops_.push_back(
        packet_latency(hops, params_.context_bits));
    remote_read_by_hops_.push_back(
        packet_latency(hops, params_.addr_bits) +
        packet_latency(hops, params_.word_bits));
    remote_write_by_hops_.push_back(
        packet_latency(hops, params_.addr_bits + params_.word_bits) +
        packet_latency(hops, 0));
  }
  const std::int32_t n = mesh_.num_cores();
  if (n <= kPairTableMaxCores) {
    const auto pairs =
        static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
    migration_by_pair_.reserve(pairs);
    remote_read_by_pair_.reserve(pairs);
    remote_write_by_pair_.reserve(pairs);
    for (CoreId src = 0; src < n; ++src) {
      for (CoreId dst = 0; dst < n; ++dst) {
        if (src == dst) {
          migration_by_pair_.push_back(0);
          remote_read_by_pair_.push_back(0);
          remote_write_by_pair_.push_back(0);
          continue;
        }
        const auto h =
            static_cast<std::size_t>(mesh_.hops(src, dst));
        migration_by_pair_.push_back(migration_by_hops_[h]);
        remote_read_by_pair_.push_back(remote_read_by_hops_[h]);
        remote_write_by_pair_.push_back(remote_write_by_hops_[h]);
      }
    }
  }
}

std::uint32_t CostModel::flits_for(std::uint64_t payload_bits) const noexcept {
  const std::uint64_t total = payload_bits + params_.header_bits;
  const std::uint64_t flits =
      (total + params_.link_width_bits - 1) / params_.link_width_bits;
  return static_cast<std::uint32_t>(flits == 0 ? 1 : flits);
}

Cost CostModel::packet_latency(std::int32_t hops,
                               std::uint64_t payload_bits) const noexcept {
  const std::uint32_t flits = flits_for(payload_bits);
  return static_cast<Cost>(hops) * params_.per_hop_cycles + (flits - 1);
}

Cost CostModel::migration_bits(CoreId src, CoreId dst,
                               std::uint64_t bits) const noexcept {
  if (src == dst) {
    return 0;
  }
  return packet_latency(mesh_.hops(src, dst), bits);
}

Cost CostModel::message(CoreId src, CoreId dst,
                        std::uint64_t payload_bits) const noexcept {
  if (src == dst) {
    return 0;
  }
  return packet_latency(mesh_.hops(src, dst), payload_bits);
}

}  // namespace em2
