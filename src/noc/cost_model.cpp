#include "noc/cost_model.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace em2 {

CostModel::CostModel(const Mesh& mesh, const CostModelParams& params)
    : CostModel(mesh, params,
                HopLatencies::uniform(
                    static_cast<double>(params.per_hop_cycles))) {}

CostModel::CostModel(const Mesh& mesh, const CostModelParams& params,
                     const HopLatencies& hop)
    : mesh_(mesh), params_(params), hop_(hop) {
  EM2_ASSERT(params.link_width_bits > 0, "link width must be positive");
  EM2_ASSERT(params.per_hop_cycles > 0, "per-hop latency must be positive");
  for (const double c : hop_.cycles) {
    EM2_ASSERT(std::isfinite(c) && c > 0,
               "per-vnet hop latencies must be finite and positive");
  }
  // Precompute the hot-path latency tables over every possible hop count.
  const auto table_size = static_cast<std::size_t>(mesh_.diameter()) + 1;
  migration_by_hops_.reserve(table_size);
  migration_native_by_hops_.reserve(table_size);
  remote_read_by_hops_.reserve(table_size);
  remote_write_by_hops_.reserve(table_size);
  for (std::size_t h = 0; h < table_size; ++h) {
    const auto hops = static_cast<std::int32_t>(h);
    migration_by_hops_.push_back(
        packet_latency_on(vnet::kMigrationGuest, hops,
                          params_.context_bits));
    migration_native_by_hops_.push_back(
        packet_latency_on(vnet::kMigrationNative, hops,
                          params_.context_bits));
    remote_read_by_hops_.push_back(
        packet_latency_on(vnet::kRemoteRequest, hops, params_.addr_bits) +
        packet_latency_on(vnet::kRemoteReply, hops, params_.word_bits));
    remote_write_by_hops_.push_back(
        packet_latency_on(vnet::kRemoteRequest, hops,
                          params_.addr_bits + params_.word_bits) +
        packet_latency_on(vnet::kRemoteReply, hops, 0));
  }
}

std::uint32_t CostModel::flits_for(std::uint64_t payload_bits) const noexcept {
  const std::uint64_t total = payload_bits + params_.header_bits;
  const std::uint64_t flits =
      (total + params_.link_width_bits - 1) / params_.link_width_bits;
  return static_cast<std::uint32_t>(flits == 0 ? 1 : flits);
}

Cost CostModel::packet_latency(std::int32_t hops,
                               std::uint64_t payload_bits) const noexcept {
  const std::uint32_t flits = flits_for(payload_bits);
  return static_cast<Cost>(hops) * params_.per_hop_cycles + (flits - 1);
}

Cost CostModel::packet_latency_on(int vn, std::int32_t hops,
                                  std::uint64_t payload_bits) const noexcept {
  const std::uint32_t flits = flits_for(payload_bits);
  // llround keeps integer hop latencies exact (uniform models reproduce
  // packet_latency bit-for-bit) and is monotone in the corrected latency.
  const auto head = static_cast<Cost>(std::llround(
      static_cast<double>(hops) *
      hop_.cycles[static_cast<std::size_t>(vn)]));
  return head + (flits - 1);
}

Cost CostModel::migration_bits(CoreId src, CoreId dst,
                               std::uint64_t bits) const noexcept {
  if (src == dst) {
    return 0;
  }
  return packet_latency_on(vnet::kMigrationGuest, mesh_.hops(src, dst),
                           bits);
}

Cost CostModel::message(CoreId src, CoreId dst, std::uint64_t payload_bits,
                        int vn) const noexcept {
  if (src == dst) {
    return 0;
  }
  return packet_latency_on(vn, mesh_.hops(src, dst), payload_bits);
}

}  // namespace em2
