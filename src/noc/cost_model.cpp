#include "noc/cost_model.hpp"

#include "util/assert.hpp"

namespace em2 {

CostModel::CostModel(const Mesh& mesh, const CostModelParams& params)
    : mesh_(mesh), params_(params) {
  EM2_ASSERT(params.link_width_bits > 0, "link width must be positive");
  EM2_ASSERT(params.per_hop_cycles > 0, "per-hop latency must be positive");
}

std::uint32_t CostModel::flits_for(std::uint64_t payload_bits) const noexcept {
  const std::uint64_t total = payload_bits + params_.header_bits;
  const std::uint64_t flits =
      (total + params_.link_width_bits - 1) / params_.link_width_bits;
  return static_cast<std::uint32_t>(flits == 0 ? 1 : flits);
}

Cost CostModel::packet_latency(std::int32_t hops,
                               std::uint64_t payload_bits) const noexcept {
  const std::uint32_t flits = flits_for(payload_bits);
  return static_cast<Cost>(hops) * params_.per_hop_cycles + (flits - 1);
}

Cost CostModel::migration(CoreId src, CoreId dst) const noexcept {
  return migration_bits(src, dst, params_.context_bits);
}

Cost CostModel::migration_bits(CoreId src, CoreId dst,
                               std::uint64_t bits) const noexcept {
  if (src == dst) {
    return 0;
  }
  return packet_latency(mesh_.hops(src, dst), bits);
}

Cost CostModel::remote_access(CoreId requester, CoreId home,
                              MemOp op) const noexcept {
  if (requester == home) {
    return 0;
  }
  const std::int32_t hops = mesh_.hops(requester, home);
  const std::uint64_t request_bits =
      op == MemOp::kWrite ? params_.addr_bits + params_.word_bits
                          : params_.addr_bits;
  // Reads return one word; writes return a header-only ack.
  const std::uint64_t reply_bits =
      op == MemOp::kRead ? params_.word_bits : 0;
  return packet_latency(hops, request_bits) +
         packet_latency(hops, reply_bits);
}

Cost CostModel::message(CoreId src, CoreId dst,
                        std::uint64_t payload_bits) const noexcept {
  if (src == dst) {
    return 0;
  }
  return packet_latency(mesh_.hops(src, dst), payload_bits);
}

}  // namespace em2
