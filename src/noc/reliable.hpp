// Reliable transport over the lossy cycle-level mesh: positive ACKs, a
// retransmission timer with exponential backoff, and receiver-side
// deduplication, so every message is delivered to the application exactly
// once even when the fault injector discards packets.
//
// Loss model: a packet is dropped AT EJECTION — it traversed (and
// occupied) every link of its path first, so lost traffic still loads the
// fabric, exactly the property the contention correction needs to price
// retransmission load into the corrected cost tables.  The drop draw is
// the injector's stateless (transport id, attempt) hash, so a given
// (spec, seed) loses the identical packets on every replay.
//
// ACKs are single-flit headers travelling back on the SAME vnet as their
// data packet.  On this fabric that cannot deadlock: ejection is an
// infinite sink (consumption is guaranteed by construction), so a
// request-reply dependency never backs up into the network.  ACKs are
// themselves droppable; the receiver re-ACKs every duplicate, so a lost
// ACK only costs one spurious retransmission.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "noc/network.hpp"
#include "sim/faults.hpp"

namespace em2 {

/// Reliable exactly-once message layer over Network.  Usage mirrors the
/// raw fabric: send() any number of messages, step() once per cycle,
/// consume application-level deliveries via drain_delivered().  The
/// injector must outlive the transport.
class ReliableNetwork {
 public:
  /// `base_timeout` is the attempt-0 retransmission timeout in cycles;
  /// 0 auto-derives max(spec.retry_timeout, a mesh-round-trip bound) so
  /// small spec timeouts on big meshes do not retransmit packets that
  /// are merely still in flight.  Attempt k waits
  /// (base_timeout + flits) << min(k, 6).
  ReliableNetwork(const Mesh& mesh, const NetworkParams& params,
                  const FaultInjector& faults, Cycle base_timeout = 0);

  /// Queues one reliable message; returns its transport id.  `token` is
  /// returned in the application-level Delivery (whose Packet::id is the
  /// transport id).
  std::uint64_t send(CoreId src, CoreId dst, std::int32_t vnet,
                     std::int32_t flits, std::uint64_t token = 0);

  /// Advances the fabric one cycle, processes ejections (drops, dedup,
  /// ACK generation) and fires due retransmission timers.
  void step();

  /// Runs until the transport fully quiesces (every message delivered
  /// AND acknowledged, fabric empty) or `max_cycles` elapse; returns
  /// true iff quiesced.  Total loss (drop_rate == 1) therefore cannot
  /// hang — it returns false at the bound.
  bool run_until_drained(Cycle max_cycles);

  /// Exactly-once application deliveries since the last drain.
  /// Delivery::injected is the FIRST attempt's send cycle, so the
  /// latency includes every retransmission round.
  std::vector<Delivery> drain_delivered();

  Cycle now() const noexcept { return net_.now(); }
  /// Fully quiesced: nothing unacknowledged and the fabric is empty.
  bool idle() const noexcept { return live_ == 0 && net_.idle(); }
  /// Messages sent but not yet acknowledged (the closed-loop window's
  /// in-flight count).
  std::uint64_t live_messages() const noexcept { return live_; }

  std::uint64_t messages_sent() const noexcept { return msgs_.size(); }
  std::uint64_t messages_delivered() const noexcept {
    return delivered_count_;
  }
  /// Packets lost at ejection (data + ACKs).
  std::uint64_t drops() const noexcept { return drops_; }
  /// Data retransmissions (attempts beyond each first).
  std::uint64_t retransmissions() const noexcept { return retransmissions_; }
  /// Duplicate data deliveries suppressed by receiver dedup.
  std::uint64_t duplicates() const noexcept { return duplicates_; }

  /// No-lost-message accounting: an acknowledged message was delivered,
  /// and an undelivered message still has a live retransmission timer.
  /// Checked cheaply at any time; tests assert it at quiescence.
  bool verify_conservation() const noexcept;

  /// Fabric utilization with the per-vnet drop/retransmit counters
  /// filled in — what the measured-contention calibration consumes.
  FabricUtilization utilization() const;

  const Network& fabric() const noexcept { return net_; }

 private:
  struct Message {
    CoreId src = 0;
    CoreId dst = 0;
    std::int32_t vnet = 0;
    std::int32_t flits = 1;
    std::uint64_t token = 0;
    Cycle first_injected = 0;
    std::uint32_t attempt = 0;  ///< latest attempt number
    bool delivered = false;
    bool acked = false;
  };
  struct Timeout {
    Cycle deadline = 0;
    std::uint64_t tid = 0;
    std::uint32_t attempt = 0;
    /// Min-heap on (deadline, tid) — tid tiebreak keeps firing order
    /// deterministic.
    friend bool operator>(const Timeout& a, const Timeout& b) noexcept {
      return a.deadline != b.deadline ? a.deadline > b.deadline
                                      : a.tid > b.tid;
    }
  };

  void transmit(std::uint64_t tid, std::uint32_t attempt);
  void on_eject(const Delivery& d);
  Cycle timeout_for(const Message& m, std::uint32_t attempt) const noexcept;

  Network net_;
  const FaultInjector& faults_;
  Cycle base_timeout_ = 0;
  std::vector<Message> msgs_;
  std::priority_queue<Timeout, std::vector<Timeout>, std::greater<>>
      timers_;
  std::vector<Delivery> delivered_app_;
  std::vector<std::uint64_t> dropped_by_vnet_;
  std::vector<std::uint64_t> retransmitted_by_vnet_;
  std::uint64_t live_ = 0;
  std::uint64_t delivered_count_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace em2
