// Analytic on-chip-network cost model — the cost functions of the paper's
// simplified analytical model (Section 3):
//
//   cost_migration(c_i, c_j)      one-way transfer of the execution context
//   cost_remote_access(c_j, d)    round-trip word-granularity cache access
//
// Both are derived from a wormhole-routed mesh: a packet of F flits
// travelling H hops arrives H * per_hop + (F - 1) cycles after injection
// (head pipeline fill + body serialization).  The base model deliberately
// ignores contention and local cache access time, exactly as the paper's
// model does ("ignores local memory access delays (since the
// migration-vs.-RA decision mainly affects network delays)").
//
// Contention enters through HopLatencies: the tables can be rebuilt from
// per-virtual-network per-hop latencies supplied by the M/D/1 correction
// (noc/contention.hpp), which inflates each vnet's hop cost by its
// measured or estimated link utilization.  A uniform HopLatencies at
// per_hop_cycles reproduces the uncontended tables bit-identically.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geom/mesh.hpp"
#include "noc/vnet.hpp"
#include "util/types.hpp"

namespace em2 {

/// Parameters of the network + architectural context sizes.  Defaults match
/// the paper's setting: 32-bit Atom-like cores (PC + 32 GPRs ~ 1056 bits,
/// up to ~2 Kbit with TLB state), 128-bit mesh links.
struct CostModelParams {
  /// Cycles for the head flit to advance one hop (router + link).
  std::uint32_t per_hop_cycles = 1;
  /// Link (= flit) width in bits.
  std::uint32_t link_width_bits = 128;
  /// Per-packet header (routing/control) bits, carried in the first flit
  /// alongside payload space accounting.
  std::uint32_t header_bits = 32;
  /// Architectural word size in bits (32-bit Atom-like core).
  std::uint32_t word_bits = 32;
  /// Program-counter bits (the irreducible part of any migrated context).
  std::uint32_t pc_bits = 32;
  /// Address bits carried by a remote-access request.
  std::uint32_t addr_bits = 64;
  /// Full execution-context size in bits for a register-file core:
  /// PC (32) + 32 x 32-bit GPRs = 1056; set to ~2048 to model TLB state.
  std::uint32_t context_bits = 1056;
};

/// Per-virtual-network head-flit hop latencies (cycles, fractional) the
/// tables are built from.  uniform(params.per_hop_cycles) is the
/// uncontended model; the contention layer supplies inflated values.
struct HopLatencies {
  std::array<double, vnet::kNumVnets> cycles{};

  static HopLatencies uniform(double per_hop) noexcept {
    HopLatencies h;
    h.cycles.fill(per_hop);
    return h;
  }
};

/// Closed-form packet/migration/remote-access costs over a mesh.
class CostModel {
 public:
  /// Uncontended model: every vnet advances at params.per_hop_cycles.
  CostModel(const Mesh& mesh, const CostModelParams& params);
  /// Contention-corrected model: tables rebuilt from per-vnet hop
  /// latencies.  HopLatencies::uniform(params.per_hop_cycles) reproduces
  /// the uncontended tables bit-identically.
  CostModel(const Mesh& mesh, const CostModelParams& params,
            const HopLatencies& hop);

  const CostModelParams& params() const noexcept { return params_; }
  const HopLatencies& hop_latencies() const noexcept { return hop_; }
  const Mesh& mesh() const noexcept { return mesh_; }

  /// Number of flits for `payload_bits` of payload (header included);
  /// always at least 1.
  std::uint32_t flits_for(std::uint64_t payload_bits) const noexcept;

  /// Uncontended latency of a `payload_bits` packet over `hops` hops.
  /// Zero-hop packets (local delivery) cost only serialization.
  Cost packet_latency(std::int32_t hops,
                      std::uint64_t payload_bits) const noexcept;

  /// Same, on virtual network `vn`'s (possibly contention-corrected) hop
  /// latency.  Equals packet_latency() under a uniform model.
  Cost packet_latency_on(int vn, std::int32_t hops,
                         std::uint64_t payload_bits) const noexcept;

  /// cost_migration(src, dst): one-way context transfer (paper Section 3)
  /// on the guest-migration vnet.  Migrating to the current core is free.
  /// Served from the per-hop-count table via the mesh's precomputed
  /// coordinates: ~600 B of lookup state per table regardless of mesh
  /// size, so every hot-path load stays L1-resident.  (Dense per-pair
  /// tables were tried and removed: at 64 cores the four tables already
  /// total 128 KB of randomly-indexed state, and the L1 misses cost the
  /// EM2-RA hot loop ~7% against two extra L1 loads here.)
  Cost migration(CoreId src, CoreId dst) const noexcept {
    if (src == dst) {
      return 0;
    }
    return migration_by_hops_[static_cast<std::size_t>(
        mesh_.hops(src, dst))];
  }

  /// Context transfer to the thread's reserved native context (evictions
  /// and returns home) on the native-migration vnet.  Identical to
  /// migration() under a uniform model; diverges only when contention
  /// loads the two migration vnets differently.
  Cost migration_native(CoreId src, CoreId dst) const noexcept {
    if (src == dst) {
      return 0;
    }
    return migration_native_by_hops_[static_cast<std::size_t>(
        mesh_.hops(src, dst))];
  }

  /// Migration cost on the vnet the protocol engine would actually use:
  /// moves into the thread's reserved `native` context travel the native
  /// vnet, all others the guest vnet.  Identical under a uniform model;
  /// keeps the analytic DP/policy evaluators charging the same table as
  /// the engine when contention splits the two migration vnets (the
  /// optimal-lower-bounds-every-policy invariant depends on it).
  Cost migration_to(CoreId src, CoreId dst, CoreId native) const noexcept {
    return dst == native ? migration_native(src, dst)
                         : migration(src, dst);
  }

  /// Migration carrying an explicit context size (stack-EM2 uses this with
  /// pc + depth * word bits); guest-migration vnet.
  Cost migration_bits(CoreId src, CoreId dst,
                      std::uint64_t bits) const noexcept;

  /// cost_remote_access(requester, home): request + reply round trip.
  /// Reads send an address and return a word; writes send address + word
  /// and return an ack.  Requests travel on vnet::kRemoteRequest, replies
  /// on vnet::kRemoteReply.  Remote access to the local core is free.
  /// Precomputed per hop count, like migration().
  Cost remote_access(CoreId requester, CoreId home,
                     MemOp op) const noexcept {
    if (requester == home) {
      return 0;
    }
    const auto h =
        static_cast<std::size_t>(mesh_.hops(requester, home));
    return op == MemOp::kRead ? remote_read_by_hops_[h]
                              : remote_write_by_hops_[h];
  }

  /// One-way cost of a directory-protocol message used by the CC baseline
  /// (`vn` classifies it onto the memory request or reply vnet; the
  /// uncontended model is vnet-independent).
  Cost message(CoreId src, CoreId dst, std::uint64_t payload_bits,
               int vn = vnet::kMemRequest) const noexcept;

 private:
  Mesh mesh_;
  CostModelParams params_;
  HopLatencies hop_;
  /// Hot-path latency tables indexed by hop count in [0, mesh diameter]:
  /// migration (context_bits one-way, guest vnet), native migration
  /// (context_bits, native vnet), remote read (addr out, word back),
  /// remote write (addr+word out, ack back).  Index 0 entries are the
  /// serialization-only latencies; the src == dst free cases short-circuit
  /// before the table.
  std::vector<Cost> migration_by_hops_;
  std::vector<Cost> migration_native_by_hops_;
  std::vector<Cost> remote_read_by_hops_;
  std::vector<Cost> remote_write_by_hops_;
};

}  // namespace em2
