// Analytic on-chip-network cost model — the cost functions of the paper's
// simplified analytical model (Section 3):
//
//   cost_migration(c_i, c_j)      one-way transfer of the execution context
//   cost_remote_access(c_j, d)    round-trip word-granularity cache access
//
// Both are derived from a wormhole-routed mesh: a packet of F flits
// travelling H hops arrives H * per_hop + (F - 1) cycles after injection
// (head pipeline fill + body serialization).  The model deliberately
// ignores contention and local cache access time, exactly as the paper's
// model does ("ignores local memory access delays (since the
// migration-vs.-RA decision mainly affects network delays)").
#pragma once

#include <cstdint>

#include "geom/mesh.hpp"
#include "util/types.hpp"

namespace em2 {

/// Parameters of the network + architectural context sizes.  Defaults match
/// the paper's setting: 32-bit Atom-like cores (PC + 32 GPRs ~ 1056 bits,
/// up to ~2 Kbit with TLB state), 128-bit mesh links.
struct CostModelParams {
  /// Cycles for the head flit to advance one hop (router + link).
  std::uint32_t per_hop_cycles = 1;
  /// Link (= flit) width in bits.
  std::uint32_t link_width_bits = 128;
  /// Per-packet header (routing/control) bits, carried in the first flit
  /// alongside payload space accounting.
  std::uint32_t header_bits = 32;
  /// Architectural word size in bits (32-bit Atom-like core).
  std::uint32_t word_bits = 32;
  /// Program-counter bits (the irreducible part of any migrated context).
  std::uint32_t pc_bits = 32;
  /// Address bits carried by a remote-access request.
  std::uint32_t addr_bits = 64;
  /// Full execution-context size in bits for a register-file core:
  /// PC (32) + 32 x 32-bit GPRs = 1056; set to ~2048 to model TLB state.
  std::uint32_t context_bits = 1056;
};

/// Closed-form packet/migration/remote-access costs over a mesh.
class CostModel {
 public:
  CostModel(const Mesh& mesh, const CostModelParams& params);

  const CostModelParams& params() const noexcept { return params_; }
  const Mesh& mesh() const noexcept { return mesh_; }

  /// Number of flits for `payload_bits` of payload (header included);
  /// always at least 1.
  std::uint32_t flits_for(std::uint64_t payload_bits) const noexcept;

  /// Uncontended latency of a `payload_bits` packet over `hops` hops.
  /// Zero-hop packets (local delivery) cost only serialization.
  Cost packet_latency(std::int32_t hops,
                      std::uint64_t payload_bits) const noexcept;

  /// cost_migration(src, dst): one-way context transfer (paper Section 3).
  /// Migrating to the current core is free.
  Cost migration(CoreId src, CoreId dst) const noexcept;

  /// Migration carrying an explicit context size (stack-EM2 uses this with
  /// pc + depth * word bits).
  Cost migration_bits(CoreId src, CoreId dst,
                      std::uint64_t bits) const noexcept;

  /// cost_remote_access(requester, home): request + reply round trip.
  /// Reads send an address and return a word; writes send address + word
  /// and return an ack.  Remote access to the local core is free.
  Cost remote_access(CoreId requester, CoreId home,
                     MemOp op) const noexcept;

  /// Round-trip cost of a directory-protocol control message pair used by
  /// the CC baseline (address-sized request, word or line reply).
  Cost message(CoreId src, CoreId dst,
               std::uint64_t payload_bits) const noexcept;

 private:
  Mesh mesh_;
  CostModelParams params_;
};

}  // namespace em2
