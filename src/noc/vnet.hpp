// Virtual-network identifiers used by the EM2 protocol family.
//
// Split out of network.hpp so the analytic cost model (per-vnet hop
// latencies under contention correction) and the cycle-level fabric share
// ONE vnet vocabulary without the analytic layer depending on the
// cycle-level router.  The NoC itself treats vnets opaquely; these
// constants document the convention (paper Section 3: six virtual
// networks so protocol-level request-reply cycles cannot deadlock the
// fabric, and evictions can always drain to their reserved native
// contexts).
#pragma once

namespace em2 {
namespace vnet {
inline constexpr int kMigrationGuest = 0;   ///< thread migrations to guest contexts
inline constexpr int kMigrationNative = 1;  ///< evictions: migrations to native contexts
inline constexpr int kRemoteRequest = 2;    ///< EM2-RA remote-access requests
inline constexpr int kRemoteReply = 3;      ///< EM2-RA remote-access replies
inline constexpr int kMemRequest = 4;       ///< cache-miss/directory requests to home/memory
inline constexpr int kMemReply = 5;         ///< data and acknowledgement replies
inline constexpr int kNumVnets = 6;
}  // namespace vnet
}  // namespace em2
