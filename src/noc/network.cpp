#include "noc/network.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/assert.hpp"

namespace em2 {
namespace {

constexpr std::uint64_t kNoLock = std::numeric_limits<std::uint64_t>::max();

/// Input port at the downstream router for a flit travelling in `d`.
int arrival_port(Direction d) {
  switch (d) {
    case Direction::kEast:
      return static_cast<int>(Direction::kWest);
    case Direction::kWest:
      return static_cast<int>(Direction::kEast);
    case Direction::kNorth:
      return static_cast<int>(Direction::kSouth);
    case Direction::kSouth:
      return static_cast<int>(Direction::kNorth);
    case Direction::kLocal:
      break;
  }
  return static_cast<int>(Direction::kLocal);
}

}  // namespace

Network::Network(const Mesh& mesh, const NetworkParams& params)
    : mesh_(mesh), params_(params) {
  EM2_ASSERT(params.num_vnets >= 1, "need at least one virtual network");
  EM2_ASSERT(params.vc_depth >= 1, "VC FIFOs need at least one slot");
  const auto nodes = static_cast<std::size_t>(mesh_.num_cores());
  const auto per_node =
      static_cast<std::size_t>(kNumDirections * params_.num_vnets);
  EM2_ASSERT(per_node <= 64,
             "per-router occupancy mask holds at most 64 (port, vnet) "
             "candidates");
  fifos_.resize(nodes * per_node);
  out_lock_.assign(nodes * per_node, kNoLock);
  link_flits_.assign(nodes * per_node, 0);
  occupancy_.assign(nodes, 0);
  want_.assign(nodes * static_cast<std::size_t>(kNumDirections), 0);
  popped_.assign(nodes, 0);
  rr_state_.assign(nodes * static_cast<std::size_t>(kNumDirections), 0);
  latency_.resize(static_cast<std::size_t>(params_.num_vnets));
}

std::size_t Network::fifo_index(CoreId node, int port, int vn) const noexcept {
  return (static_cast<std::size_t>(node) * kNumDirections +
          static_cast<std::size_t>(port)) *
             static_cast<std::size_t>(params_.num_vnets) +
         static_cast<std::size_t>(vn);
}

bool Network::fifo_has_space(CoreId node, int port, int vn) const noexcept {
  return fifos_[fifo_index(node, port, vn)].q.size() <
         static_cast<std::size_t>(params_.vc_depth);
}

void Network::inject(const Packet& packet) {
  EM2_ASSERT(packet.vnet >= 0 && packet.vnet < params_.num_vnets,
             "packet vnet out of range");
  EM2_ASSERT(packet.flits >= 1, "packet must carry at least one flit");
  EM2_ASSERT(packet.src >= 0 && packet.src < mesh_.num_cores() &&
                 packet.dst >= 0 && packet.dst < mesh_.num_cores(),
             "packet endpoints outside the mesh");
  const std::uint64_t index = packets_.size();
  packets_.push_back(PacketState{packet, now_});
  ++in_flight_;
  // Source-queue flits directly into the local input FIFO's unbounded
  // staging area: we model the source queue as allowed to exceed vc_depth
  // (injection backpressure is then exerted by the switch, which only
  // drains one flit per cycle per output).  This matches a processor-side
  // unbounded send queue feeding a network interface.
  auto& fifo = fifos_[fifo_index(packet.src, 0, packet.vnet)];
  const bool was_empty = fifo.q.empty();
  for (std::int32_t f = 0; f < packet.flits; ++f) {
    Flit flit;
    flit.packet_index = index;
    flit.head = f == 0;
    flit.tail = f == packet.flits - 1;
    flit.arrived = now_;
    fifo.q.push_back(flit);
  }
  if (was_empty) {
    occupancy_[static_cast<std::size_t>(packet.src)] |=
        candidate_bit(0, packet.vnet);
    set_front_want(packet.src, 0, packet.vnet, fifo.q.front());
  }
}

int Network::front_want(CoreId node, int vn, const Flit& front) const {
  if (front.head) {
    // Heads choose their output by XY routing.
    return static_cast<int>(mesh_.route_xy(
        node, packets_[front.packet_index].packet.dst));
  }
  // Body/tail flits follow the wormhole lock their head acquired at this
  // router; the lock is held until this packet's tail passes, so exactly
  // one output holds it.
  for (int out = 0; out < kNumDirections; ++out) {
    if (out_lock_[fifo_index(node, out, vn)] == front.packet_index) {
      return out;
    }
  }
  EM2_ASSERT(false, "body flit at the front of a FIFO without its head's "
                    "wormhole lock");
  return 0;
}

void Network::set_front_want(CoreId node, int port, int vn,
                             const Flit& front) {
  want_[static_cast<std::size_t>(node) * kNumDirections +
        static_cast<std::size_t>(front_want(node, vn, front))] |=
      candidate_bit(port, vn);
}

bool Network::try_grant(CoreId node, int out, Direction out_dir,
                        CoreId next, std::uint32_t cand,
                        std::size_t rr_index, bool& any_movement) {
  const std::int32_t vnets = params_.num_vnets;
  const int in_port = static_cast<int>(cand) / vnets;
  const int vn = static_cast<int>(cand) % vnets;
  const std::size_t fi = fifo_index(node, in_port, vn);
  const std::uint64_t bit = candidate_bit(in_port, vn);
  if ((popped_[static_cast<std::size_t>(node)] & bit) != 0 ||
      fifos_[fi].q.empty()) {
    return false;
  }
  const Flit& flit = fifos_[fi].q.front();
  if (flit.arrived >= now_) {
    return false;  // arrived this cycle; earliest move is next cycle
  }
  const PacketState& ps = packets_[flit.packet_index];
  const std::size_t lock_index = fifo_index(node, out, vn);
  if (flit.head) {
    // Heads choose their output by XY routing and must acquire the
    // (output, vnet) wormhole lock.
    if (static_cast<int>(mesh_.route_xy(node, ps.packet.dst)) != out) {
      return false;
    }
    if (out_lock_[lock_index] != kNoLock) {
      return false;
    }
  } else {
    // Body/tail flits follow the lock their head acquired.
    if (out_lock_[lock_index] != flit.packet_index) {
      return false;
    }
  }
  // Downstream space (ejection is an infinite sink).
  if (out_dir != Direction::kLocal &&
      !fifo_has_space(next, arrival_port(out_dir), vn)) {
    return false;
  }
  // Grant.
  Flit moving = flit;
  fifos_[fi].q.pop_front();
  // The granted candidate's front is gone: its want bit lives in THIS
  // output's mask by construction — drop it, and the occupancy bit if the
  // FIFO drained.
  want_[static_cast<std::size_t>(node) * kNumDirections +
        static_cast<std::size_t>(out)] &= ~bit;
  if (fifos_[fi].q.empty()) {
    occupancy_[static_cast<std::size_t>(node)] &= ~bit;
  }
  popped_[static_cast<std::size_t>(node)] |= bit;
  any_movement = true;
  if (moving.head && !moving.tail) {
    out_lock_[lock_index] = moving.packet_index;
  }
  if (moving.tail && !moving.head) {
    out_lock_[lock_index] = kNoLock;
  }
  if (!fifos_[fi].q.empty()) {
    // Re-register the new front AFTER the lock update above: a body
    // behind a just-granted head wants the output that head just locked.
    set_front_want(node, in_port, vn, fifos_[fi].q.front());
  }
  if (out_dir == Direction::kLocal) {
    if (moving.tail) {
      const PacketState& done = packets_[moving.packet_index];
      delivered_.push_back(Delivery{done.packet, done.injected, now_});
      ++delivered_count_;
      --in_flight_;
      latency_[static_cast<std::size_t>(vn)].add(
          static_cast<double>(now_ - done.injected));
    }
  } else {
    const int ap = arrival_port(out_dir);
    const std::size_t di = fifo_index(next, ap, vn);
    moving.arrived = now_;
    const bool dest_was_empty = fifos_[di].q.empty();
    fifos_[di].q.push_back(moving);
    if (dest_was_empty) {
      occupancy_[static_cast<std::size_t>(next)] |= candidate_bit(ap, vn);
      // A body landing at an empty FIFO means its head already traversed
      // `next`'s switch, so the wormhole lock it needs is in place there.
      set_front_want(next, ap, vn, moving);
    }
    ++flit_hops_;
    ++link_flits_[lock_index];
  }
  rr_state_[rr_index] = cand + 1;
  return true;  // one flit per output port per cycle
}

void Network::step() {
  ++now_;
  bool any_movement = false;
  const std::uint32_t num_candidates =
      static_cast<std::uint32_t>(kNumDirections * params_.num_vnets);
  // popped_ tracks FIFOs that already surrendered a flit this cycle: an
  // input port feeds the switch at most one flit per cycle.  Member
  // buffer reused across cycles — calibration replays step millions of
  // cycles and a per-step allocation dominated the whole replay.
  std::fill(popped_.begin(), popped_.end(), 0);

  for (CoreId node = 0; node < mesh_.num_cores(); ++node) {
    if (params_.occupancy_mask &&
        occupancy_[static_cast<std::size_t>(node)] == 0) {
      continue;  // idle router: no candidate on any output
    }
    for (int out = 0; out < kNumDirections; ++out) {
      const auto out_dir = static_cast<Direction>(out);
      const CoreId next =
          out_dir == Direction::kLocal ? node : mesh_.neighbor(node, out_dir);
      if (next == kNoCore) {
        continue;  // mesh edge: no link in this direction
      }
      // Round-robin over (input port, vnet) candidates.
      const std::size_t rr_index =
          static_cast<std::size_t>(node) * kNumDirections +
          static_cast<std::size_t>(out);
      const std::uint32_t start = rr_state_[rr_index] % num_candidates;
      if (params_.occupancy_mask) {
        // Probe only the not-yet-popped candidates whose front flit heads
        // for THIS output, in the same rotated order the exhaustive scan
        // visits: start..nc-1, then 0..start-1.  Identical grants — every
        // skipped candidate is one the scan rejects on the empty, popped,
        // route, or lock-follow check with no side effect — at
        // ~#competitors probes instead of num_candidates.
        const std::uint64_t avail =
            want_[static_cast<std::size_t>(node) * kNumDirections +
                  static_cast<std::size_t>(out)] &
            ~popped_[static_cast<std::size_t>(node)];
        if (avail == 0) {
          continue;
        }
        bool granted = false;
        std::uint64_t hi = avail >> start;
        while (hi != 0) {
          const std::uint32_t cand =
              start + static_cast<std::uint32_t>(std::countr_zero(hi));
          if (try_grant(node, out, out_dir, next, cand, rr_index,
                        any_movement)) {
            granted = true;
            break;
          }
          hi &= hi - 1;
        }
        if (!granted && start != 0) {
          std::uint64_t lo =
              avail & ((std::uint64_t{1} << start) - 1);
          while (lo != 0) {
            const std::uint32_t cand =
                static_cast<std::uint32_t>(std::countr_zero(lo));
            if (try_grant(node, out, out_dir, next, cand, rr_index,
                          any_movement)) {
              break;
            }
            lo &= lo - 1;
          }
        }
      } else {
        // Reference arbiter: exhaustive probe over every candidate.
        for (std::uint32_t probe = 0; probe < num_candidates; ++probe) {
          const std::uint32_t cand = (start + probe) % num_candidates;
          if (try_grant(node, out, out_dir, next, cand, rr_index,
                        any_movement)) {
            break;
          }
        }
      }
    }
  }

  if (in_flight_ > 0 && !any_movement) {
    ++stalled_cycles_;
  } else {
    stalled_cycles_ = 0;
  }
}

bool Network::run_until_drained(Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  while (!idle() && now_ < deadline) {
    step();
  }
  return idle();
}

FabricUtilization Network::utilization() const {
  const auto vnets = static_cast<std::size_t>(params_.num_vnets);
  FabricUtilization u;
  u.cycles = now_;
  u.mean_by_vnet.assign(vnets, 0.0);
  u.weighted_by_vnet.assign(vnets, 0.0);
  u.seen_by_vnet.assign(vnets, 0.0);
  u.peak_by_vnet.assign(vnets, 0.0);
  u.flits_by_vnet.assign(vnets, 0);
  u.dropped_by_vnet.assign(vnets, 0);
  u.retransmitted_by_vnet.assign(vnets, 0);
  // Sums over directed inter-router links; the flit-weighted means are
  // sum(flits_l * rho_l) / sum(flits_l) — the occupancy (own vnet's, or
  // the link total across vnets for `seen`) the average flit of the vnet
  // experienced.
  std::vector<double> weighted_num(vnets, 0.0);
  std::vector<double> seen_num(vnets, 0.0);
  for (CoreId node = 0; node < mesh_.num_cores(); ++node) {
    for (int out = 1; out < kNumDirections; ++out) {  // skip kLocal
      if (mesh_.neighbor(node, static_cast<Direction>(out)) == kNoCore) {
        continue;
      }
      ++u.num_links;
      std::uint64_t link_total = 0;
      for (std::size_t vn = 0; vn < vnets; ++vn) {
        link_total += link_flits_[fifo_index(node, out, static_cast<int>(vn))];
      }
      for (std::size_t vn = 0; vn < vnets; ++vn) {
        const std::uint64_t flits =
            link_flits_[fifo_index(node, out, static_cast<int>(vn))];
        u.flits_by_vnet[vn] += flits;
        if (now_ == 0 || flits == 0) {
          continue;
        }
        const double rho =
            static_cast<double>(flits) / static_cast<double>(now_);
        const double rho_total =
            static_cast<double>(link_total) / static_cast<double>(now_);
        weighted_num[vn] += static_cast<double>(flits) * rho;
        seen_num[vn] += static_cast<double>(flits) * rho_total;
        if (rho > u.peak_by_vnet[vn]) {
          u.peak_by_vnet[vn] = rho;
        }
        if (rho > u.peak) {
          u.peak = rho;
        }
      }
    }
  }
  for (std::size_t vn = 0; vn < vnets; ++vn) {
    if (now_ > 0 && u.num_links > 0) {
      u.mean_by_vnet[vn] = static_cast<double>(u.flits_by_vnet[vn]) /
                           (static_cast<double>(u.num_links) *
                            static_cast<double>(now_));
    }
    if (u.flits_by_vnet[vn] > 0) {
      const double den = static_cast<double>(u.flits_by_vnet[vn]);
      u.weighted_by_vnet[vn] = weighted_num[vn] / den;
      u.seen_by_vnet[vn] = seen_num[vn] / den;
    }
  }
  return u;
}

std::vector<Delivery> Network::drain_delivered() {
  std::vector<Delivery> out;
  out.swap(delivered_);
  return out;
}

}  // namespace em2
