#include "noc/network.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace em2 {
namespace {

constexpr std::uint64_t kNoLock = std::numeric_limits<std::uint64_t>::max();

/// Input port at the downstream router for a flit travelling in `d`.
int arrival_port(Direction d) {
  switch (d) {
    case Direction::kEast:
      return static_cast<int>(Direction::kWest);
    case Direction::kWest:
      return static_cast<int>(Direction::kEast);
    case Direction::kNorth:
      return static_cast<int>(Direction::kSouth);
    case Direction::kSouth:
      return static_cast<int>(Direction::kNorth);
    case Direction::kLocal:
      break;
  }
  return static_cast<int>(Direction::kLocal);
}

}  // namespace

Network::Network(const Mesh& mesh, const NetworkParams& params)
    : mesh_(mesh), params_(params) {
  EM2_ASSERT(params.num_vnets >= 1, "need at least one virtual network");
  EM2_ASSERT(params.vc_depth >= 1, "VC FIFOs need at least one slot");
  const auto nodes = static_cast<std::size_t>(mesh_.num_cores());
  const auto per_node =
      static_cast<std::size_t>(kNumDirections * params_.num_vnets);
  fifos_.resize(nodes * per_node);
  out_lock_.assign(nodes * per_node, kNoLock);
  link_flits_.assign(nodes * per_node, 0);
  popped_.assign(nodes * per_node, 0);
  rr_state_.assign(nodes * static_cast<std::size_t>(kNumDirections), 0);
  latency_.resize(static_cast<std::size_t>(params_.num_vnets));
}

std::size_t Network::fifo_index(CoreId node, int port, int vn) const noexcept {
  return (static_cast<std::size_t>(node) * kNumDirections +
          static_cast<std::size_t>(port)) *
             static_cast<std::size_t>(params_.num_vnets) +
         static_cast<std::size_t>(vn);
}

bool Network::fifo_has_space(CoreId node, int port, int vn) const noexcept {
  return fifos_[fifo_index(node, port, vn)].q.size() <
         static_cast<std::size_t>(params_.vc_depth);
}

void Network::inject(const Packet& packet) {
  EM2_ASSERT(packet.vnet >= 0 && packet.vnet < params_.num_vnets,
             "packet vnet out of range");
  EM2_ASSERT(packet.flits >= 1, "packet must carry at least one flit");
  EM2_ASSERT(packet.src >= 0 && packet.src < mesh_.num_cores() &&
                 packet.dst >= 0 && packet.dst < mesh_.num_cores(),
             "packet endpoints outside the mesh");
  const std::uint64_t index = packets_.size();
  packets_.push_back(PacketState{packet, now_});
  ++in_flight_;
  // Source-queue flits directly into the local input FIFO's unbounded
  // staging area: we model the source queue as allowed to exceed vc_depth
  // (injection backpressure is then exerted by the switch, which only
  // drains one flit per cycle per output).  This matches a processor-side
  // unbounded send queue feeding a network interface.
  auto& fifo = fifos_[fifo_index(packet.src, 0, packet.vnet)];
  for (std::int32_t f = 0; f < packet.flits; ++f) {
    Flit flit;
    flit.packet_index = index;
    flit.head = f == 0;
    flit.tail = f == packet.flits - 1;
    flit.arrived = now_;
    fifo.q.push_back(flit);
  }
}

void Network::step() {
  ++now_;
  bool any_movement = false;
  const std::int32_t vnets = params_.num_vnets;
  // Tracks FIFOs that already surrendered a flit this cycle: an input port
  // feeds the switch at most one flit per cycle.  Member buffer reused
  // across cycles — calibration replays step millions of cycles and a
  // per-step allocation dominated the whole replay.
  std::fill(popped_.begin(), popped_.end(), 0);
  std::uint8_t* popped = popped_.data();

  for (CoreId node = 0; node < mesh_.num_cores(); ++node) {
    for (int out = 0; out < kNumDirections; ++out) {
      const auto out_dir = static_cast<Direction>(out);
      const CoreId next =
          out_dir == Direction::kLocal ? node : mesh_.neighbor(node, out_dir);
      if (next == kNoCore) {
        continue;  // mesh edge: no link in this direction
      }
      // Round-robin over (input port, vnet) candidates.
      const std::size_t rr_index =
          static_cast<std::size_t>(node) * kNumDirections +
          static_cast<std::size_t>(out);
      const std::uint32_t num_candidates =
          static_cast<std::uint32_t>(kNumDirections * vnets);
      const std::uint32_t start = rr_state_[rr_index] % num_candidates;
      for (std::uint32_t probe = 0; probe < num_candidates; ++probe) {
        const std::uint32_t cand = (start + probe) % num_candidates;
        const int in_port = static_cast<int>(cand) / vnets;
        const int vn = static_cast<int>(cand) % vnets;
        const std::size_t fi = fifo_index(node, in_port, vn);
        if (popped[fi] || fifos_[fi].q.empty()) {
          continue;
        }
        const Flit& flit = fifos_[fi].q.front();
        if (flit.arrived >= now_) {
          continue;  // arrived this cycle; earliest move is next cycle
        }
        const PacketState& ps = packets_[flit.packet_index];
        const std::size_t lock_index = fifo_index(node, out, vn);
        if (flit.head) {
          // Heads choose their output by XY routing and must acquire the
          // (output, vnet) wormhole lock.
          if (static_cast<int>(mesh_.route_xy(node, ps.packet.dst)) != out) {
            continue;
          }
          if (out_lock_[lock_index] != kNoLock) {
            continue;
          }
        } else {
          // Body/tail flits follow the lock their head acquired.
          if (out_lock_[lock_index] != flit.packet_index) {
            continue;
          }
        }
        // Downstream space (ejection is an infinite sink).
        if (out_dir != Direction::kLocal &&
            !fifo_has_space(next, arrival_port(out_dir), vn)) {
          continue;
        }
        // Grant.
        Flit moving = flit;
        fifos_[fi].q.pop_front();
        popped[fi] = 1;
        any_movement = true;
        if (moving.head && !moving.tail) {
          out_lock_[lock_index] = moving.packet_index;
        }
        if (moving.tail && !moving.head) {
          out_lock_[lock_index] = kNoLock;
        }
        if (out_dir == Direction::kLocal) {
          if (moving.tail) {
            const PacketState& done = packets_[moving.packet_index];
            delivered_.push_back(Delivery{done.packet, done.injected, now_});
            ++delivered_count_;
            --in_flight_;
            latency_[static_cast<std::size_t>(vn)].add(
                static_cast<double>(now_ - done.injected));
          }
        } else {
          const std::size_t di = fifo_index(next, arrival_port(out_dir), vn);
          moving.arrived = now_;
          fifos_[di].q.push_back(moving);
          ++flit_hops_;
          ++link_flits_[lock_index];
        }
        rr_state_[rr_index] = cand + 1;
        break;  // one flit per output port per cycle
      }
    }
  }

  if (in_flight_ > 0 && !any_movement) {
    ++stalled_cycles_;
  } else {
    stalled_cycles_ = 0;
  }
}

bool Network::run_until_drained(Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  while (!idle() && now_ < deadline) {
    step();
  }
  return idle();
}

FabricUtilization Network::utilization() const {
  const auto vnets = static_cast<std::size_t>(params_.num_vnets);
  FabricUtilization u;
  u.cycles = now_;
  u.mean_by_vnet.assign(vnets, 0.0);
  u.weighted_by_vnet.assign(vnets, 0.0);
  u.seen_by_vnet.assign(vnets, 0.0);
  u.peak_by_vnet.assign(vnets, 0.0);
  u.flits_by_vnet.assign(vnets, 0);
  // Sums over directed inter-router links; the flit-weighted means are
  // sum(flits_l * rho_l) / sum(flits_l) — the occupancy (own vnet's, or
  // the link total across vnets for `seen`) the average flit of the vnet
  // experienced.
  std::vector<double> weighted_num(vnets, 0.0);
  std::vector<double> seen_num(vnets, 0.0);
  for (CoreId node = 0; node < mesh_.num_cores(); ++node) {
    for (int out = 1; out < kNumDirections; ++out) {  // skip kLocal
      if (mesh_.neighbor(node, static_cast<Direction>(out)) == kNoCore) {
        continue;
      }
      ++u.num_links;
      std::uint64_t link_total = 0;
      for (std::size_t vn = 0; vn < vnets; ++vn) {
        link_total += link_flits_[fifo_index(node, out, static_cast<int>(vn))];
      }
      for (std::size_t vn = 0; vn < vnets; ++vn) {
        const std::uint64_t flits =
            link_flits_[fifo_index(node, out, static_cast<int>(vn))];
        u.flits_by_vnet[vn] += flits;
        if (now_ == 0 || flits == 0) {
          continue;
        }
        const double rho =
            static_cast<double>(flits) / static_cast<double>(now_);
        const double rho_total =
            static_cast<double>(link_total) / static_cast<double>(now_);
        weighted_num[vn] += static_cast<double>(flits) * rho;
        seen_num[vn] += static_cast<double>(flits) * rho_total;
        if (rho > u.peak_by_vnet[vn]) {
          u.peak_by_vnet[vn] = rho;
        }
        if (rho > u.peak) {
          u.peak = rho;
        }
      }
    }
  }
  for (std::size_t vn = 0; vn < vnets; ++vn) {
    if (now_ > 0 && u.num_links > 0) {
      u.mean_by_vnet[vn] = static_cast<double>(u.flits_by_vnet[vn]) /
                           (static_cast<double>(u.num_links) *
                            static_cast<double>(now_));
    }
    if (u.flits_by_vnet[vn] > 0) {
      const double den = static_cast<double>(u.flits_by_vnet[vn]);
      u.weighted_by_vnet[vn] = weighted_num[vn] / den;
      u.seen_by_vnet[vn] = seen_num[vn] / den;
    }
  }
  return u;
}

std::vector<Delivery> Network::drain_delivered() {
  std::vector<Delivery> out;
  out.swap(delivered_);
  return out;
}

}  // namespace em2
