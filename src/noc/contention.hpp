// Contention-aware correction for the analytic cost tables.
//
// The paper's cost model assumes an uncontended mesh — exactly the regime
// where migration traffic (2-message round trips carrying full contexts)
// diverges most from remote-access traffic.  This layer closes the gap
// without paying cycle-level cost on every sweep point:
//
//   1. A calibration pass captures the protocol's packets (noc/traffic.hpp)
//      and either replays them on the cycle-level fabric (measured) or
//      routes them along their XY paths analytically (estimated), yielding
//      for each virtual network the total link occupancy its flits see and
//      the service-time moments of the traffic mix.
//   2. Each router output is modelled as an M/D/1-style queue under
//      Pollaczek-Khinchine: packets occupy a link for their full
//      serialization time (flits x cycles — a 9-flit context holds a link
//      9 cycles), and vnets share physical link bandwidth, so the waiting
//      a vnet's head flit accrues per hop is
//
//        W(vn) = rho / (2 (1 - rho)) * E[S^2]/E[S]
//
//      with rho the total occupancy seen by vn's flits and S the service
//      time of the competing packet mix.
//   3. The CostModel tables are rebuilt from the corrected HopLatencies
//      (per_hop + W) and the analytic sweep reruns against them.
//
// rho is clamped to max_utilization before the queueing term, so the
// correction saturates gracefully (finite, monotone) instead of diverging
// as rho -> 1; an offered load past saturation reads as the clamp.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geom/mesh.hpp"
#include "noc/cost_model.hpp"
#include "noc/network.hpp"
#include "noc/traffic.hpp"
#include "util/types.hpp"

namespace em2 {

class FaultInjector;  // sim/faults.hpp

/// Knobs of the M/D/1 correction.
struct ContentionParams {
  /// Utilization clamp applied before the queueing term: rho is limited to
  /// [0, max_utilization], bounding the wait factor at
  /// max_utilization / (2 (1 - max_utilization)) service times per hop
  /// (9.5 at the default).  Keeps the corrected tables finite for
  /// saturated vnets.
  double max_utilization = 0.95;
};

/// Per-vnet inputs of the correction, derived from calibration traffic.
struct VnetLoad {
  /// Total link occupancy (all vnets — they share physical links) seen by
  /// this vnet's flits, in [0, 1] measured or >= 0 offered.
  double utilization = 0.0;
  /// Arrival-weighted mean service time of the competing packet mix on
  /// the links this vnet uses (cycles = flits; E[S]).
  double mean_service = 1.0;
  /// Arrival-weighted second moment (E[S^2]); E[S^2]/E[S] is the
  /// Pollaczek-Khinchine effective service of the mix.
  double mean_service_sq = 1.0;
};

/// Mean M/D/1 queueing wait in units of the (deterministic) service time:
/// rho / (2 (1 - rho)), with rho clamped to [0, max_utilization].
/// Total for non-finite rho: NaN and -inf read as 0, +inf as the clamp —
/// never returns inf/NaN itself.
double md1_wait_factor(double rho, double max_utilization = 0.95) noexcept;

/// Per-vnet corrected head-flit hop latencies:
/// per_hop_cycles + md1_wait_factor(rho[vn]) * E[S^2]/E[S].  Zero
/// utilization returns HopLatencies::uniform(per_hop_cycles), i.e. the
/// uncontended model, regardless of the service moments.
HopLatencies corrected_hop_latencies(
    const CostModelParams& params,
    const std::array<VnetLoad, vnet::kNumVnets>& loads,
    const ContentionParams& cparams = {});

/// Routes every event along its XY path analytically and returns the
/// per-vnet load: per-link offered occupancy (flit-cycles over the
/// virtual makespan) aggregated flit-weighted into the occupancy each
/// vnet sees, plus the service moments of the mix.  The
/// placement-estimated leg of RunSpec::contention — and the source of the
/// service moments for the measured leg, whose utilization the caller
/// overwrites with FabricUtilization::seen_by_vnet.
std::array<VnetLoad, vnet::kNumVnets> analyze_offered_load(
    const Mesh& mesh, const CostModel& cost,
    const std::vector<TrafficEvent>& events);

/// Stable-sorts `events` by injection time and truncates to the earliest
/// `max_packets` — the "short calibration run" that bounds the cycle-level
/// replay regardless of trace length.
void prepare_calibration_events(std::vector<TrafficEvent>& events,
                                std::uint64_t max_packets);

/// Bounds of one cycle-level calibration replay.
struct CalibrationOptions {
  /// Hard stop for the replay (cycles); a replay that hits it reports
  /// drained = false and utilization over the cycles it did run.
  Cycle max_cycles = 4'000'000;
  /// Closed-loop window: at most this many packets in flight at once
  /// (0 = unbounded).  The protocol is closed-loop — a thread stalls on
  /// its own migration or remote round trip, so it can never queue
  /// packets behind an undelivered one.  Replaying the virtual schedule
  /// open-loop would let source queues grow without bound past
  /// saturation and measure latencies no real run can exhibit; the
  /// window (callers pass ~2x the thread count: one chain per thread
  /// plus eviction transients) restores the self-throttling.
  std::uint64_t max_outstanding = 0;
  NetworkParams network{};
};

/// What the fabric measured during a calibration replay.
struct CalibrationReport {
  FabricUtilization utilization;
  std::uint64_t packets = 0;  ///< packets injected (and, if drained, delivered)
  Cycle cycles = 0;           ///< replay duration
  /// Sum over delivered packets of (delivered - injected): the cycle-level
  /// ground truth the corrected analytic prediction is validated against.
  Cost measured_total_latency = 0;
  /// Lossy replays only: packets lost at ejection / retransmitted by the
  /// reliable transport (zero on the lossless path).
  std::uint64_t drops = 0;
  std::uint64_t retransmissions = 0;
  bool drained = true;
};

/// Replays `events` (prepared: time-sorted, truncated) on a fresh
/// cycle-level mesh, injecting each packet at its virtual time (or as soon
/// as the replay reaches it and the closed-loop window has room) and
/// stepping until drained or max_cycles.  `cost` supplies the
/// payload-to-flit conversion only.  A non-null `faults` with a positive
/// drop rate routes the replay through the reliable transport
/// (noc/reliable.hpp): ejection-time losses, ACKs, and retransmissions
/// all load the fabric, so the measured utilization — and therefore the
/// corrected cost tables — price the recovery traffic in.  Null (or a
/// lossless spec) is byte-identical to the historical lossless replay.
CalibrationReport replay_on_fabric(const Mesh& mesh, const CostModel& cost,
                                   const std::vector<TrafficEvent>& events,
                                   const CalibrationOptions& opts = {},
                                   const FaultInjector* faults = nullptr);

/// Analytic total latency of the same packets under `cost`'s tables, in
/// the fabric's delivery convention (hops + serialization + one ejection
/// cycle per packet) so it compares apples-to-apples against
/// CalibrationReport::measured_total_latency — with the uncontended model
/// this is the prediction the paper's tables make for the calibration
/// traffic; with a corrected model it is the contention-aware prediction
/// the differential tests validate.
Cost predict_total_latency(const CostModel& cost,
                           const std::vector<TrafficEvent>& events);

}  // namespace em2
