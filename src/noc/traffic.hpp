// Protocol-packet capture: the bridge between the analytic protocol
// engines and the cycle-level fabric.
//
// The trace-driven engines (em2/trace_sim, em2ra/hybrid_sim,
// coherence/cc_sim) charge closed-form packet latencies and never touch
// the cycle-level router.  For contention calibration we need the packets
// themselves: every machine accepts an optional TrafficSink and reports
// each packet it would inject (source, destination, virtual network,
// payload bits).  The run loops stamp each recorded packet with the
// issuing thread's virtual clock — accumulated compute + uncontended
// network cycles — which approximates the open-loop offered load the
// M/D/1 correction (noc/contention.hpp) assumes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace em2 {

/// One protocol-level packet as an analytic engine would inject it.
struct TrafficEvent {
  CoreId src = 0;
  CoreId dst = 0;
  std::int32_t vnet = 0;
  std::uint64_t payload_bits = 0;
  /// Virtual injection time: the issuing thread's accumulated cycles
  /// (one per access plus its uncontended network/memory latency) at the
  /// moment the packet leaves.  Stamped by the run loop, not the machine.
  Cycle when = 0;
};

/// Observer of individual protocol packets.  Registered on a machine via
/// set_traffic_sink(); called once per packet the protocol would inject
/// (never for src == dst, which generates no network traffic).  Runs on
/// the protocol hot path: implementations must be O(1)-ish and must not
/// re-enter the machine.
class TrafficSink {
 public:
  virtual ~TrafficSink() = default;
  virtual void on_packet(CoreId src, CoreId dst, std::int32_t vn,
                         std::uint64_t payload_bits) = 0;
};

/// Accumulating sink used by the calibration pass.  The machine appends
/// packets without timestamps; after each access the run loop calls
/// stamp() to assign the issuing thread's virtual clock to everything
/// recorded since the previous stamp (an access's migration, its
/// eviction, or its remote request/reply pair all depart together).
///
/// A capped recorder keeps only the `cap` earliest packets by (virtual
/// time, record order) — O(cap) memory on arbitrarily long recordings.
/// Batch compaction with a stable sort makes the kept set exactly what
/// an unbounded recording followed by a stable time-sort + truncation
/// would keep: stable_sort puts survivors into the (when, record-order)
/// total order, later arrivals append after them, and re-sorting the
/// union resolves every tie old-first — i.e. by record order.
class TrafficRecorder final : public TrafficSink {
 public:
  /// `cap` = 0 records everything (the estimated path integrates the
  /// whole run); the measured path caps at its calibration budget.
  explicit TrafficRecorder(std::uint64_t cap = 0) : cap_(cap) {}

  void on_packet(CoreId src, CoreId dst, std::int32_t vn,
                 std::uint64_t payload_bits) override {
    events_.push_back(TrafficEvent{src, dst, vn, payload_bits, 0});
  }

  /// Timestamps every packet recorded since the previous stamp().
  void stamp(Cycle when) {
    for (std::size_t i = stamped_; i < events_.size(); ++i) {
      events_[i].when = when;
    }
    stamped_ = events_.size();
    if (cap_ > 0 && events_.size() >= 2 * cap_) {
      compact();
    }
  }

  std::vector<TrafficEvent>& events() noexcept { return events_; }
  const std::vector<TrafficEvent>& events() const noexcept {
    return events_;
  }

 private:
  void compact() {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const TrafficEvent& a, const TrafficEvent& b) {
                       return a.when < b.when;
                     });
    events_.resize(static_cast<std::size_t>(cap_));
    stamped_ = events_.size();
  }

  std::uint64_t cap_ = 0;
  std::vector<TrafficEvent> events_;
  std::size_t stamped_ = 0;
};

}  // namespace em2
