#include "noc/reliable.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace em2 {

ReliableNetwork::ReliableNetwork(const Mesh& mesh,
                                 const NetworkParams& params,
                                 const FaultInjector& faults,
                                 Cycle base_timeout)
    : net_(mesh, params),
      faults_(faults),
      dropped_by_vnet_(static_cast<std::size_t>(params.num_vnets), 0),
      retransmitted_by_vnet_(static_cast<std::size_t>(params.num_vnets),
                             0) {
  if (base_timeout > 0) {
    base_timeout_ = base_timeout;
  } else {
    // A packet that is merely crossing an unloaded mesh must not time
    // out: bound a round trip by twice the diameter in hops (data out,
    // ACK back) with per-hop slack for arbitration, and never go below
    // the spec's configured timeout.
    const Cycle diameter =
        static_cast<Cycle>(mesh.width() + mesh.height());
    base_timeout_ =
        std::max<Cycle>(faults.spec().retry_timeout, 4 * (diameter + 2));
  }
}

Cycle ReliableNetwork::timeout_for(const Message& m,
                                   std::uint32_t attempt) const noexcept {
  // Serialization rides on top of the base bound; exponential backoff
  // with the same shift cap the protocol-level recovery uses.
  return (base_timeout_ + static_cast<Cycle>(m.flits))
         << (attempt < 6 ? attempt : 6u);
}

std::uint64_t ReliableNetwork::send(CoreId src, CoreId dst,
                                    std::int32_t vnet, std::int32_t flits,
                                    std::uint64_t token) {
  const std::uint64_t tid = msgs_.size();
  Message m;
  m.src = src;
  m.dst = dst;
  m.vnet = vnet;
  m.flits = flits;
  m.token = token;
  m.first_injected = net_.now();
  msgs_.push_back(m);
  ++live_;
  transmit(tid, 0);
  return tid;
}

void ReliableNetwork::transmit(std::uint64_t tid, std::uint32_t attempt) {
  const Message& m = msgs_[static_cast<std::size_t>(tid)];
  Packet p;
  p.id = tid * 2;  // even = data, odd = ACK
  p.src = m.src;
  p.dst = m.dst;
  p.vnet = m.vnet;
  p.flits = m.flits;
  p.token = attempt;  // the drop draw at ejection needs the attempt
  net_.inject(p);
  timers_.push(Timeout{net_.now() + timeout_for(m, attempt), tid, attempt});
  if (attempt > 0) {
    ++retransmissions_;
    ++retransmitted_by_vnet_[static_cast<std::size_t>(m.vnet)];
  }
}

void ReliableNetwork::on_eject(const Delivery& d) {
  const std::uint64_t tid = d.packet.id / 2;
  const auto attempt = static_cast<std::uint32_t>(d.packet.token);
  Message& m = msgs_[static_cast<std::size_t>(tid)];
  if ((d.packet.id & 1) != 0) {
    // ACK.  Droppable like any packet; a lost ACK is recovered by the
    // sender's timer plus receiver dedup.
    if (faults_.drop_packet(d.packet.id, attempt)) {
      ++drops_;
      ++dropped_by_vnet_[static_cast<std::size_t>(d.packet.vnet)];
      return;
    }
    if (!m.acked) {
      m.acked = true;
      --live_;
    }
    return;
  }
  // Data packet.
  if (faults_.drop_packet(d.packet.id, attempt)) {
    ++drops_;
    ++dropped_by_vnet_[static_cast<std::size_t>(d.packet.vnet)];
    return;
  }
  if (!m.delivered) {
    m.delivered = true;
    ++delivered_count_;
    Packet app;
    app.id = tid;
    app.src = m.src;
    app.dst = m.dst;
    app.vnet = m.vnet;
    app.flits = m.flits;
    app.token = m.token;
    delivered_app_.push_back(Delivery{app, m.first_injected, net_.now()});
  } else {
    ++duplicates_;
  }
  // Always ACK, duplicates included — the duplicate means the original
  // ACK (or the data's first copy) was lost.
  Packet ack;
  ack.id = tid * 2 + 1;
  ack.src = m.dst;
  ack.dst = m.src;
  ack.vnet = m.vnet;
  ack.flits = 1;
  ack.token = attempt;
  net_.inject(ack);
}

void ReliableNetwork::step() {
  net_.step();
  for (const Delivery& d : net_.drain_delivered()) {
    on_eject(d);
  }
  while (!timers_.empty() && timers_.top().deadline <= net_.now()) {
    const Timeout t = timers_.top();
    timers_.pop();
    Message& m = msgs_[static_cast<std::size_t>(t.tid)];
    if (m.acked || t.attempt != m.attempt) {
      continue;  // acknowledged, or a newer attempt owns the timer
    }
    ++m.attempt;
    transmit(t.tid, m.attempt);
  }
}

bool ReliableNetwork::run_until_drained(Cycle max_cycles) {
  const Cycle deadline = net_.now() + max_cycles;
  while (!idle() && net_.now() < deadline) {
    step();
  }
  return idle();
}

std::vector<Delivery> ReliableNetwork::drain_delivered() {
  std::vector<Delivery> out;
  out.swap(delivered_app_);
  return out;
}

bool ReliableNetwork::verify_conservation() const noexcept {
  std::uint64_t delivered = 0;
  std::uint64_t unacked = 0;
  for (const Message& m : msgs_) {
    delivered += m.delivered;
    unacked += !m.acked;
    if (m.acked && !m.delivered) {
      return false;  // an ACK can only follow a delivery
    }
  }
  // Every unacknowledged message must still be retried (live), and the
  // exactly-once count must match what the application saw.
  return delivered == delivered_count_ && unacked == live_;
}

FabricUtilization ReliableNetwork::utilization() const {
  FabricUtilization u = net_.utilization();
  u.dropped_by_vnet = dropped_by_vnet_;
  u.retransmitted_by_vnet = retransmitted_by_vnet_;
  return u;
}

}  // namespace em2
