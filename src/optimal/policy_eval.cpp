#include "optimal/policy_eval.hpp"

#include "util/assert.hpp"

namespace em2 {

namespace {

template <typename Policy>
MigrateRaSolution evaluate_policy_model_impl(const ModelTrace& trace,
                                             const CostModel& cost,
                                             Policy& policy) {
  const std::size_t n = trace.homes.size();
  MigrateRaSolution sol;
  sol.actions.resize(n);
  sol.locations.resize(n);

  CoreId at = trace.start;
  for (std::size_t k = 0; k < n; ++k) {
    const CoreId home = trace.homes[k];
    const MemOp op = trace.ops[k];
    if (at == home) {
      sol.actions[k] = AccessAction::kLocal;
    } else {
      DecisionQuery q;
      q.thread = 0;
      q.current = at;
      q.home = home;
      q.native = trace.start;
      q.op = op;
      if (policy.decide(q) == RaDecision::kMigrate) {
        sol.total_cost += cost.migration_to(at, home, trace.start);
        at = home;
        sol.actions[k] = AccessAction::kMigrate;
        ++sol.migrations;
      } else {
        sol.total_cost += cost.remote_access(at, home, op);
        sol.actions[k] = AccessAction::kRemote;
        ++sol.remote_accesses;
      }
    }
    sol.locations[k] = at;
    policy.observe(0, home, trace.start);
  }
  return sol;
}

}  // namespace

MigrateRaSolution evaluate_policy_model(const ModelTrace& trace,
                                        const CostModel& cost,
                                        StandardPolicy& policy) {
  return policy.visit([&](auto& p) {
    return evaluate_policy_model_impl(trace, cost, p);
  });
}

MigrateRaSolution evaluate_policy_model(const ModelTrace& trace,
                                        const CostModel& cost,
                                        DecisionPolicy& policy) {
  return evaluate_policy_model_impl(trace, cost, policy);
}

}  // namespace em2
