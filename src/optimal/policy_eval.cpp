#include "optimal/policy_eval.hpp"

#include "util/assert.hpp"

namespace em2 {

namespace {

template <typename Policy>
MigrateRaSolution evaluate_policy_model_impl(const ModelTrace& trace,
                                             const CostModel& cost,
                                             Policy& policy) {
  const std::size_t n = trace.homes.size();
  MigrateRaSolution sol;
  sol.actions.resize(n);
  sol.locations.resize(n);

  // Model flavour of the decide-then-apply pipeline.  The single-thread
  // model couples every decision to the location its own predecessors
  // produced, so a tile-wide phase 1 is only possible for schemes whose
  // action stream is a pure function of the home sequence: always-remote
  // pins the thread at trace.start, always-migrate pins it at the
  // previous home.  Those two run a branch-light single pass below
  // (their observe() is the inherited no-op, so eliding it changes
  // nothing); every other scheme — and the erased/virtual paths, which
  // reach here type-opaque — keeps the sequential decide-apply loop.
  if constexpr (std::is_same_v<Policy, AlwaysRemotePolicy>) {
    (void)policy;
    for (std::size_t k = 0; k < n; ++k) {
      const CoreId home = trace.homes[k];
      sol.locations[k] = trace.start;
      if (home == trace.start) {
        sol.actions[k] = AccessAction::kLocal;
      } else {
        sol.actions[k] = AccessAction::kRemote;
        ++sol.remote_accesses;
        sol.total_cost += cost.remote_access(trace.start, home, trace.ops[k]);
      }
    }
    return sol;
  } else if constexpr (std::is_same_v<Policy, AlwaysMigratePolicy>) {
    (void)policy;
    CoreId prev = trace.start;
    for (std::size_t k = 0; k < n; ++k) {
      const CoreId home = trace.homes[k];
      sol.locations[k] = home;
      if (home == prev) {
        sol.actions[k] = AccessAction::kLocal;
      } else {
        sol.actions[k] = AccessAction::kMigrate;
        ++sol.migrations;
        sol.total_cost += cost.migration_to(prev, home, trace.start);
        prev = home;
      }
    }
    return sol;
  }

  CoreId at = trace.start;
  for (std::size_t k = 0; k < n; ++k) {
    const CoreId home = trace.homes[k];
    const MemOp op = trace.ops[k];
    if (at == home) {
      sol.actions[k] = AccessAction::kLocal;
    } else {
      DecisionQuery q;
      q.thread = 0;
      q.current = at;
      q.home = home;
      q.native = trace.start;
      q.op = op;
      if (policy.decide(q) == RaDecision::kMigrate) {
        sol.total_cost += cost.migration_to(at, home, trace.start);
        at = home;
        sol.actions[k] = AccessAction::kMigrate;
        ++sol.migrations;
      } else {
        sol.total_cost += cost.remote_access(at, home, op);
        sol.actions[k] = AccessAction::kRemote;
        ++sol.remote_accesses;
      }
    }
    sol.locations[k] = at;
    policy.observe(0, home, trace.start);
  }
  return sol;
}

}  // namespace

MigrateRaSolution evaluate_policy_model(const ModelTrace& trace,
                                        const CostModel& cost,
                                        StandardPolicy& policy) {
  return policy.visit([&](auto& p) {
    return evaluate_policy_model_impl(trace, cost, p);
  });
}

MigrateRaSolution evaluate_policy_model(const ModelTrace& trace,
                                        const CostModel& cost,
                                        DecisionPolicy& policy) {
  return evaluate_policy_model_impl(trace, cost, policy);
}

}  // namespace em2
