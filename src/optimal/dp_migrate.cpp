#include "optimal/dp_migrate.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace em2 {
namespace {

/// Shared post-processing: given the per-access location sequence, derive
/// actions, counts, and (for verification) the schedule cost.
void finalize_from_locations(const ModelTrace& trace, const CostModel& cost,
                             MigrateRaSolution& sol) {
  const std::size_t n = trace.homes.size();
  sol.actions.resize(n);
  sol.migrations = 0;
  sol.remote_accesses = 0;
  Cost recomputed = 0;
  CoreId at = trace.start;
  for (std::size_t k = 0; k < n; ++k) {
    const CoreId home = trace.homes[k];
    const CoreId next = sol.locations[k];
    if (next == at && at == home) {
      sol.actions[k] = AccessAction::kLocal;
    } else if (next == home && next != at) {
      sol.actions[k] = AccessAction::kMigrate;
      recomputed += cost.migration_to(at, home, trace.start);
      ++sol.migrations;
    } else {
      EM2_ASSERT(next == at && at != home,
                 "inconsistent schedule: location must be the home (after "
                 "a migration) or unchanged (remote access)");
      sol.actions[k] = AccessAction::kRemote;
      recomputed += cost.remote_access(at, home, trace.ops[k]);
      ++sol.remote_accesses;
    }
    at = next;
  }
  EM2_ASSERT(recomputed == sol.total_cost,
             "schedule cost reconstruction disagrees with DP value");
}

}  // namespace

ModelTrace make_model_trace(std::span<const CoreId> homes,
                            std::span<const MemOp> ops, CoreId start) {
  EM2_ASSERT(homes.size() == ops.size(),
             "home and op sequences must have equal length");
  ModelTrace t;
  t.homes.assign(homes.begin(), homes.end());
  t.ops.assign(ops.begin(), ops.end());
  t.start = start;
  return t;
}

MigrateRaSolution solve_optimal_migrate_ra(const ModelTrace& trace,
                                           const CostModel& cost) {
  const std::size_t n = trace.homes.size();
  const auto P =
      static_cast<std::size_t>(cost.mesh().num_cores());
  EM2_ASSERT(trace.start >= 0 && static_cast<std::size_t>(trace.start) < P,
             "start core outside the mesh");

  std::vector<Cost> dp(P, kInfiniteCost);
  dp[static_cast<std::size_t>(trace.start)] = 0;

  // Per-step choice record for the hit core: the core migrated from, or
  // kNoCore when the optimum stays at the home (covers both "was already
  // there" and reconstruction disambiguation).
  std::vector<CoreId> hit_choice(n, kNoCore);

  for (std::size_t k = 0; k < n; ++k) {
    const CoreId d = trace.homes[k];
    const auto di = static_cast<std::size_t>(d);
    const MemOp op = trace.ops[k];

    // Core-hit update first (it reads dp[] of the *previous* step for all
    // cores, including the stay-at-d term).
    Cost best_hit = dp[di];  // stay: local access, free
    CoreId best_from = kNoCore;
    for (std::size_t c = 0; c < P; ++c) {
      if (c == di || dp[c] >= kInfiniteCost) {
        continue;
      }
      const Cost via =
          dp[c] + cost.migration_to(static_cast<CoreId>(c), d, trace.start);
      if (via < best_hit) {
        best_hit = via;
        best_from = static_cast<CoreId>(c);
      }
    }

    // Core-miss updates: every other core stays and pays a remote access.
    for (std::size_t c = 0; c < P; ++c) {
      if (c == di || dp[c] >= kInfiniteCost) {
        continue;
      }
      dp[c] += cost.remote_access(static_cast<CoreId>(c), d, op);
    }
    dp[di] = best_hit;
    hit_choice[k] = best_from;
  }

  // Optimal end state and backward reconstruction.
  MigrateRaSolution sol;
  std::size_t end = 0;
  for (std::size_t c = 1; c < P; ++c) {
    if (dp[c] < dp[end]) {
      end = c;
    }
  }
  sol.total_cost = dp[end];
  EM2_ASSERT(sol.total_cost < kInfiniteCost, "no feasible schedule found");

  sol.locations.resize(n);
  CoreId at = static_cast<CoreId>(end);
  for (std::size_t k = n; k-- > 0;) {
    sol.locations[k] = at;
    const CoreId d = trace.homes[k];
    if (at == d) {
      // Hit state: either stayed (previous location == d) or migrated in.
      at = hit_choice[k] == kNoCore ? d : hit_choice[k];
    }
    // Miss state: thread stayed at `at` (remote access) — unchanged.
  }
  finalize_from_locations(trace, cost, sol);
  return sol;
}

MigrateRaSolution solve_optimal_relaxed(const ModelTrace& trace,
                                        const CostModel& cost) {
  const std::size_t n = trace.homes.size();
  const auto P = static_cast<std::size_t>(cost.mesh().num_cores());

  std::vector<Cost> dp(P, kInfiniteCost);
  dp[static_cast<std::size_t>(trace.start)] = 0;
  // Backpointers: previous core for every (step, core) — O(N*P) memory,
  // acceptable for the ablation sizes this solver is used at.
  std::vector<CoreId> prev(n * P, kNoCore);

  std::vector<Cost> next(P, kInfiniteCost);
  for (std::size_t k = 0; k < n; ++k) {
    const CoreId d = trace.homes[k];
    const MemOp op = trace.ops[k];
    std::fill(next.begin(), next.end(), kInfiniteCost);
    for (std::size_t cj = 0; cj < P; ++cj) {
      // End the step at cj: arrive from any ci (possibly cj itself), then
      // serve the access locally (cj == d) or remotely (cj != d).
      const Cost serve =
          static_cast<CoreId>(cj) == d
              ? 0
              : cost.remote_access(static_cast<CoreId>(cj), d, op);
      for (std::size_t ci = 0; ci < P; ++ci) {
        if (dp[ci] >= kInfiniteCost) {
          continue;
        }
        const Cost move =
            ci == cj ? 0
                     : cost.migration_to(static_cast<CoreId>(ci),
                                         static_cast<CoreId>(cj),
                                         trace.start);
        const Cost total = dp[ci] + move + serve;
        if (total < next[cj]) {
          next[cj] = total;
          prev[k * P + cj] = static_cast<CoreId>(ci);
        }
      }
    }
    dp.swap(next);
  }

  MigrateRaSolution sol;
  std::size_t end = 0;
  for (std::size_t c = 1; c < P; ++c) {
    if (dp[c] < dp[end]) {
      end = c;
    }
  }
  sol.total_cost = dp[end];
  EM2_ASSERT(sol.total_cost < kInfiniteCost, "no feasible schedule found");

  // Reconstruct locations; note the relaxed schedule may include
  // repositioning moves, so actions/migration counts are derived from the
  // location sequence (a reposition followed by remote access is counted
  // as one migration plus one remote access).
  sol.locations.resize(n);
  CoreId at = static_cast<CoreId>(end);
  for (std::size_t k = n; k-- > 0;) {
    sol.locations[k] = at;
    at = prev[k * P + static_cast<std::size_t>(at)];
  }
  // Derive actions and counts without the strict-schedule assertion of
  // finalize_from_locations (repositioning breaks its invariant).
  const std::size_t len = trace.homes.size();
  sol.actions.resize(len);
  CoreId loc = trace.start;
  for (std::size_t k = 0; k < len; ++k) {
    const CoreId nxt = sol.locations[k];
    const CoreId home = trace.homes[k];
    if (nxt != loc) {
      ++sol.migrations;
    }
    if (nxt == home) {
      sol.actions[k] = nxt == loc ? AccessAction::kLocal
                                  : AccessAction::kMigrate;
    } else {
      sol.actions[k] = AccessAction::kRemote;
      ++sol.remote_accesses;
    }
    loc = nxt;
  }
  return sol;
}

MigrateRaSolution brute_force_migrate_ra(const ModelTrace& trace,
                                         const CostModel& cost) {
  const std::size_t n = trace.homes.size();
  // Count decision points to bound the search.
  // A decision exists only when the thread is away from the home core,
  // which depends on earlier choices; bound by n.
  EM2_ASSERT(n <= 24, "brute force limited to tiny traces");

  MigrateRaSolution best;
  best.total_cost = kInfiniteCost;
  std::vector<CoreId> locations(n, 0);

  // Depth-first over the paper's action space.
  auto rec = [&](auto&& self, std::size_t k, CoreId at, Cost so_far) -> void {
    if (so_far >= best.total_cost) {
      return;  // branch-and-bound (costs are non-negative)
    }
    if (k == n) {
      best.total_cost = so_far;
      best.locations = locations;
      return;
    }
    const CoreId d = trace.homes[k];
    if (at == d) {
      locations[k] = d;
      self(self, k + 1, d, so_far);
      return;
    }
    // Option 1: remote access, stay.
    locations[k] = at;
    self(self, k + 1, at, so_far + cost.remote_access(at, d, trace.ops[k]));
    // Option 2: migrate to the home.
    locations[k] = d;
    self(self, k + 1, d, so_far + cost.migration_to(at, d, trace.start));
  };
  rec(rec, 0, trace.start, 0);

  EM2_ASSERT(best.total_cost < kInfiniteCost, "no feasible schedule found");
  finalize_from_locations(trace, cost, best);
  return best;
}

}  // namespace em2
