// The paper's dynamic program: optimal migrate-vs-remote-access decisions.
//
// Section 3: "The simplified model considers one thread at a time (and so
// ignores evictions caused by migrations to a core with no free guest
// contexts), ignores local memory access delays ..., and assumes knowledge
// of the full memory trace of the application as well as the
// address-to-core data placement."
//
// Recurrence (verbatim from the paper), with OPT(m1..mk, cj) the optimal
// cost of serving the first k accesses with the thread ending at core cj:
//
//   Core miss for m_{k+1} (cj != d(m_{k+1})):  the thread stays at cj and
//     performs a remote access:
//       OPT(k+1, cj) = OPT(k, cj) + cost_remote_access(cj, d(m_{k+1}))
//
//   Core hit for m_{k+1} (cj == d(m_{k+1})):  the thread either stays (free
//     local access) or migrates in from some other core ci:
//       OPT(k+1, cj) = min( OPT(k, cj),
//                           min_{ci != cj} OPT(k, ci) + cost_migration(ci, cj) )
//
// The paper bounds this at O(N*P^2).  Observing that exactly one core (the
// access's home) is a "hit" state per step, the inner minimization is
// needed only once per access, so the implementation below runs in
// O(N*P) time and O(P + N) space — same recurrence, tighter bound.  A
// relaxed-action-space variant (migration allowed to any core before any
// access) costs the full O(N*P^2) and is provided both as an ablation and
// as the literal worst-case-shape workload for the scaling bench.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "em2ra/policy.hpp"
#include "noc/cost_model.hpp"
#include "util/types.hpp"

namespace em2 {

/// What the optimal (or evaluated) schedule did for one access.
enum class AccessAction : std::uint8_t {
  kLocal = 0,    ///< thread was already at the home core
  kMigrate = 1,  ///< thread migrated to the home core
  kRemote = 2,   ///< thread stayed put and used remote access
};

/// One thread's model input: per-access home cores and operations.
struct ModelTrace {
  std::vector<CoreId> homes;
  std::vector<MemOp> ops;
  CoreId start = 0;  ///< thread's native core c0
};

/// A decision schedule with its model cost.
struct MigrateRaSolution {
  Cost total_cost = 0;
  std::vector<AccessAction> actions;   ///< one per access
  std::vector<CoreId> locations;       ///< thread location after each access
  std::uint64_t migrations = 0;
  std::uint64_t remote_accesses = 0;
};

/// Exact optimum of the paper's model via the recurrence above.
/// Time O(N*P), space O(P + N).
MigrateRaSolution solve_optimal_migrate_ra(const ModelTrace& trace,
                                           const CostModel& cost);

/// Relaxed action space: before each access the thread may migrate to ANY
/// core (not just the home), then serve the access locally or remotely.
/// Time O(N*P^2) — the literal complexity the paper quotes.  With metric
/// (mesh-distance) costs this never beats the paper model by more than
/// repositioning gains; the bench quantifies the (usually zero) gap.
MigrateRaSolution solve_optimal_relaxed(const ModelTrace& trace,
                                        const CostModel& cost);

/// Exhaustive search over the paper's action space (2^(#non-local
/// accesses) schedules).  Only for tests; aborts if the trace would
/// require more than ~2^24 evaluations.
MigrateRaSolution brute_force_migrate_ra(const ModelTrace& trace,
                                         const CostModel& cost);

/// Extracts a ModelTrace from per-access home cores + ops of one thread.
ModelTrace make_model_trace(std::span<const CoreId> homes,
                            std::span<const MemOp> ops, CoreId start);

}  // namespace em2
