#include "optimal/dp_stack.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace em2 {
namespace {

/// Encoded DP state: kNativeState = parked at the native core (full stack
/// locally available); 0..window = at the previous access's home core with
/// that many window entries live.
constexpr std::int32_t kNativeState = -1;

/// One transition out of a state for a given access.
struct Option {
  std::int32_t to_state = kNativeState;
  Cost cost = 0;
  std::uint32_t migrations = 0;
  std::uint32_t forced_returns = 0;
  std::uint64_t context_bits = 0;
  /// Chosen carried depth, or -1 if this option involves no depth choice.
  std::int32_t depth_choice = -1;
};

std::uint64_t stack_ctx_bits(const CostModel& cost, std::uint32_t depth) {
  return cost.params().pc_bits +
         static_cast<std::uint64_t>(cost.params().word_bits) * depth;
}

Cost mig_stack(const CostModel& cost, CoreId a, CoreId b,
               std::uint32_t depth) {
  return cost.migration_bits(a, b, stack_ctx_bits(cost, depth));
}

/// Flush of `words` live entries from remote core `c` to the native
/// stack memory (single write message; zero words cost nothing).
Cost flush_cost(const CostModel& cost, CoreId c, CoreId native,
                std::uint32_t words) {
  if (words == 0) {
    return 0;
  }
  return cost.message(
      c, native, static_cast<std::uint64_t>(words) * cost.params().word_bits);
}

/// Applies the access's stack motion to a window of `r` entries and
/// returns (new_state, extra cost, forced-return flag).  Caller guarantees
/// r >= pops.  Overflow past the window forces a return to native after
/// the access completes.
void execute_at_remote(const CostModel& cost, CoreId at, CoreId native,
                       std::uint32_t window, std::uint32_t r,
                       std::uint32_t pops, std::uint32_t pushes,
                       Option& opt) {
  EM2_ASSERT(r >= pops, "execute_at_remote requires enough live entries");
  const std::uint32_t r_mid = r - pops + pushes;
  if (r_mid > window) {
    // Overflow: spills target native stack memory, so the thread
    // "automatically migrates back to its native core".
    opt.cost += mig_stack(cost, at, native, window);
    opt.context_bits += stack_ctx_bits(cost, window);
    ++opt.migrations;
    ++opt.forced_returns;
    opt.to_state = kNativeState;
  } else {
    opt.to_state = static_cast<std::int32_t>(r_mid);
  }
}

/// Enumerates every legal transition from `state` (window occupancy at
/// `loc`, or parked at native) through an access at `e` consuming `p` and
/// producing `u` entries.  Shared by the DP, the brute force, and the
/// reconstruction replay, so all three agree on the action space.
std::vector<Option> enumerate_options(const CostModel& cost,
                                      std::int32_t state, CoreId loc,
                                      CoreId native, std::uint32_t window,
                                      CoreId e, std::uint32_t p,
                                      std::uint32_t u) {
  EM2_ASSERT(p <= window,
             "per-step pops must fit the stack-cache window (generator "
             "contract)");
  std::vector<Option> options;

  auto emit_from_native = [&](Cost base_cost, std::uint32_t base_migs,
                              std::uint32_t base_forced,
                              std::uint64_t base_bits) {
    if (e == native) {
      Option opt;
      opt.cost = base_cost;
      opt.migrations = base_migs;
      opt.forced_returns = base_forced;
      opt.context_bits = base_bits;
      opt.to_state = kNativeState;
      options.push_back(opt);
      return;
    }
    for (std::uint32_t k = p; k <= window; ++k) {
      Option opt;
      opt.cost = base_cost + mig_stack(cost, native, e, k);
      opt.migrations = base_migs + 1;
      opt.forced_returns = base_forced;
      opt.context_bits = base_bits + stack_ctx_bits(cost, k);
      opt.depth_choice = static_cast<std::int32_t>(k);
      execute_at_remote(cost, e, native, window, k, p, u, opt);
      options.push_back(opt);
    }
  };

  if (state == kNativeState) {
    emit_from_native(0, 0, 0, 0);
    return options;
  }

  const auto r = static_cast<std::uint32_t>(state);
  EM2_ASSERT(loc != kNoCore && loc != native,
             "window states exist only at remote cores");

  if (e == loc) {
    // Run continues at the current remote core.
    if (r >= p) {
      Option opt;
      execute_at_remote(cost, loc, native, window, r, p, u, opt);
      options.push_back(opt);
    } else {
      // Underflow: forced bounce through native, then return with a fresh
      // depth choice.
      const Cost back = mig_stack(cost, loc, native, r);
      const std::uint64_t back_bits = stack_ctx_bits(cost, r);
      for (std::uint32_t k = p; k <= window; ++k) {
        Option opt;
        opt.cost = back + mig_stack(cost, native, loc, k);
        opt.migrations = 2;
        opt.forced_returns = 1;
        opt.context_bits = back_bits + stack_ctx_bits(cost, k);
        opt.depth_choice = static_cast<std::int32_t>(k);
        execute_at_remote(cost, loc, native, window, k, p, u, opt);
        options.push_back(opt);
      }
    }
    return options;
  }

  if (e == native) {
    // Going home: carry the whole live window (it all belongs in the
    // native stack anyway), execute locally for free.
    Option opt;
    opt.cost = mig_stack(cost, loc, native, r);
    opt.migrations = 1;
    opt.context_bits = stack_ctx_bits(cost, r);
    opt.to_state = kNativeState;
    options.push_back(opt);
    return options;
  }

  // Remote-to-remote move.
  if (r >= p) {
    // Direct: carry k of the r live entries, flush the rest to native.
    const std::uint32_t carry_max = std::min(r, window);
    for (std::uint32_t k = p; k <= carry_max; ++k) {
      Option opt;
      opt.cost = flush_cost(cost, loc, native, r - k) +
                 mig_stack(cost, loc, e, k);
      opt.migrations = 1;
      opt.context_bits = stack_ctx_bits(cost, k);
      opt.depth_choice = static_cast<std::int32_t>(k);
      execute_at_remote(cost, e, native, window, k, p, u, opt);
      options.push_back(opt);
    }
  }
  // Via native (always legal; mandatory when r < p): return home carrying
  // the live window, then depart with any depth.
  emit_from_native(mig_stack(cost, loc, native, r), 1, r < p ? 1 : 0,
                   stack_ctx_bits(cost, r));
  return options;
}

std::size_t state_index(std::int32_t state) {
  return static_cast<std::size_t>(state + 1);  // kNativeState -> 0
}

}  // namespace

std::uint32_t AdaptiveDepthPolicy::choose(std::uint32_t need,
                                          std::uint32_t window) {
  const auto predicted = static_cast<std::uint32_t>(std::lround(ewma_));
  return std::min(window, std::max(need, predicted + margin_));
}

void AdaptiveDepthPolicy::observe_consumed(std::uint32_t consumed) {
  ewma_ = (1.0 - alpha_) * ewma_ + alpha_ * static_cast<double>(consumed);
}

StackSolution solve_optimal_stack(const StackModelTrace& trace,
                                  const CostModel& cost,
                                  std::uint32_t window) {
  EM2_ASSERT(window >= 1, "stack window must hold at least one entry");
  const std::size_t n = trace.steps.size();
  const std::size_t num_states = static_cast<std::size_t>(window) + 2;

  std::vector<Cost> dp(num_states, kInfiniteCost);
  dp[state_index(kNativeState)] = 0;

  // Backpointers: per (step, to_state): predecessor state and the index of
  // the winning option in enumerate_options(pred, ...) — replayed during
  // reconstruction.
  struct Back {
    std::int32_t from_state = kNativeState;
    std::int32_t option = -1;
  };
  std::vector<Back> back(n * num_states);

  CoreId loc = kNoCore;  // location of the window states (none initially)
  std::vector<Cost> next(num_states);
  for (std::size_t k = 0; k < n; ++k) {
    const StackStep& s = trace.steps[k];
    std::fill(next.begin(), next.end(), kInfiniteCost);
    for (std::int32_t st = kNativeState;
         st <= static_cast<std::int32_t>(window); ++st) {
      const Cost base = dp[state_index(st)];
      if (base >= kInfiniteCost) {
        continue;
      }
      const std::vector<Option> options = enumerate_options(
          cost, st, loc, trace.native, window, s.home, s.pops, s.pushes);
      for (std::size_t oi = 0; oi < options.size(); ++oi) {
        const Option& opt = options[oi];
        const Cost total = base + opt.cost;
        Cost& slot = next[state_index(opt.to_state)];
        if (total < slot) {
          slot = total;
          back[k * num_states + state_index(opt.to_state)] =
              Back{st, static_cast<std::int32_t>(oi)};
        }
      }
    }
    dp.swap(next);
    loc = s.home == trace.native ? kNoCore : s.home;
  }

  // Best end state.
  std::int32_t end_state = kNativeState;
  for (std::int32_t st = kNativeState;
       st <= static_cast<std::int32_t>(window); ++st) {
    if (dp[state_index(st)] < dp[state_index(end_state)]) {
      end_state = st;
    }
  }
  StackSolution sol;
  sol.total_cost = dp[state_index(end_state)];
  EM2_ASSERT(sol.total_cost < kInfiniteCost, "no feasible stack schedule");

  // Backward pass to recover the state path, then forward replay through
  // the shared option enumeration to rebuild costs/choices (and re-verify
  // the DP total).
  std::vector<std::int32_t> path(n + 1);
  path[n] = end_state;
  for (std::size_t k = n; k-- > 0;) {
    path[k] = back[k * num_states + state_index(path[k + 1])].from_state;
  }
  EM2_ASSERT(n == 0 || path[0] == kNativeState,
             "schedules must start parked at the native core");

  Cost replay_cost = 0;
  CoreId replay_loc = kNoCore;
  for (std::size_t k = 0; k < n; ++k) {
    const StackStep& s = trace.steps[k];
    const Back& b = back[k * num_states + state_index(path[k + 1])];
    const std::vector<Option> options =
        enumerate_options(cost, path[k], replay_loc, trace.native, window,
                          s.home, s.pops, s.pushes);
    EM2_ASSERT(b.option >= 0 &&
                   static_cast<std::size_t>(b.option) < options.size(),
               "dangling backpointer");
    const Option& opt = options[static_cast<std::size_t>(b.option)];
    EM2_ASSERT(opt.to_state == path[k + 1],
               "backpointer option does not reach the recorded state");
    replay_cost += opt.cost;
    sol.migrations += opt.migrations;
    sol.forced_returns += opt.forced_returns;
    sol.context_bits += opt.context_bits;
    if (opt.depth_choice >= 0) {
      sol.chosen_depths.push_back(
          static_cast<std::uint32_t>(opt.depth_choice));
    }
    replay_loc = s.home == trace.native ? kNoCore : s.home;
  }
  EM2_ASSERT(replay_cost == sol.total_cost,
             "replayed schedule cost disagrees with DP value");
  return sol;
}

StackSolution evaluate_stack_policy(const StackModelTrace& trace,
                                    const CostModel& cost,
                                    std::uint32_t window,
                                    StackDepthPolicy& policy) {
  EM2_ASSERT(window >= 1, "stack window must hold at least one entry");
  StackSolution sol;
  std::int32_t state = kNativeState;
  CoreId loc = kNoCore;
  // Tracks how much of the carried window each remote run consumed, to
  // train adaptive policies.
  std::uint32_t run_consumed = 0;
  bool in_remote_run = false;

  auto end_run = [&]() {
    if (in_remote_run) {
      policy.observe_consumed(run_consumed);
      in_remote_run = false;
      run_consumed = 0;
    }
  };

  auto apply = [&](const Option& opt) {
    sol.total_cost += opt.cost;
    sol.migrations += opt.migrations;
    sol.forced_returns += opt.forced_returns;
    sol.context_bits += opt.context_bits;
    if (opt.depth_choice >= 0) {
      sol.chosen_depths.push_back(
          static_cast<std::uint32_t>(opt.depth_choice));
    }
    state = opt.to_state;
  };

  for (const StackStep& s : trace.steps) {
    EM2_ASSERT(s.pops <= window, "per-step pops must fit the window");
    if (state == kNativeState) {
      if (s.home == trace.native) {
        continue;  // local, free
      }
      end_run();
      const std::uint32_t k =
          std::clamp(policy.choose(s.pops, window), s.pops, window);
      Option opt;
      opt.cost = cost.migration_bits(
          trace.native, s.home,
          cost.params().pc_bits +
              static_cast<std::uint64_t>(cost.params().word_bits) * k);
      opt.migrations = 1;
      opt.context_bits = cost.params().pc_bits +
                         static_cast<std::uint64_t>(cost.params().word_bits) * k;
      opt.depth_choice = static_cast<std::int32_t>(k);
      execute_at_remote(cost, s.home, trace.native, window, k, s.pops,
                        s.pushes, opt);
      apply(opt);
      in_remote_run = true;
      run_consumed = s.pops;
      loc = s.home;
      if (state == kNativeState) {
        end_run();  // overflow bounced us straight home
      }
      continue;
    }

    // At a remote core `loc` with `state` live entries.
    const auto r = static_cast<std::uint32_t>(state);
    if (s.home == loc) {
      run_consumed += s.pops;
      if (r >= s.pops) {
        Option opt;
        execute_at_remote(cost, loc, trace.native, window, r, s.pops,
                          s.pushes, opt);
        apply(opt);
      } else {
        // Underflow: bounce home, choose a fresh depth, return.
        end_run();
        const std::uint32_t k =
            std::clamp(policy.choose(s.pops, window), s.pops, window);
        Option opt;
        opt.cost = mig_stack(cost, loc, trace.native, r) +
                   mig_stack(cost, trace.native, loc, k);
        opt.migrations = 2;
        opt.forced_returns = 1;
        opt.context_bits =
            stack_ctx_bits(cost, r) + stack_ctx_bits(cost, k);
        opt.depth_choice = static_cast<std::int32_t>(k);
        execute_at_remote(cost, loc, trace.native, window, k, s.pops,
                          s.pushes, opt);
        apply(opt);
        in_remote_run = true;
        run_consumed = s.pops;
      }
      if (state == kNativeState) {
        end_run();
      }
      continue;
    }

    // Leaving `loc`.
    end_run();
    if (s.home == trace.native) {
      Option opt;
      opt.cost = mig_stack(cost, loc, trace.native, r);
      opt.migrations = 1;
      opt.context_bits = stack_ctx_bits(cost, r);
      opt.to_state = kNativeState;
      apply(opt);
      loc = kNoCore;
      continue;
    }
    // Remote-to-remote: direct move with a policy-chosen carry, or a
    // forced bounce when the window cannot satisfy the need.
    if (r >= s.pops) {
      const std::uint32_t carry_max = std::min(r, window);
      const std::uint32_t k =
          std::clamp(policy.choose(s.pops, window), s.pops, carry_max);
      Option opt;
      opt.cost = flush_cost(cost, loc, trace.native, r - k) +
                 mig_stack(cost, loc, s.home, k);
      opt.migrations = 1;
      opt.context_bits = stack_ctx_bits(cost, k);
      opt.depth_choice = static_cast<std::int32_t>(k);
      execute_at_remote(cost, s.home, trace.native, window, k, s.pops,
                        s.pushes, opt);
      apply(opt);
    } else {
      const std::uint32_t k =
          std::clamp(policy.choose(s.pops, window), s.pops, window);
      Option opt;
      opt.cost = mig_stack(cost, loc, trace.native, r) +
                 mig_stack(cost, trace.native, s.home, k);
      opt.migrations = 2;
      opt.forced_returns = 1;
      opt.context_bits =
          stack_ctx_bits(cost, r) + stack_ctx_bits(cost, k);
      opt.depth_choice = static_cast<std::int32_t>(k);
      execute_at_remote(cost, s.home, trace.native, window, k, s.pops,
                        s.pushes, opt);
      apply(opt);
    }
    in_remote_run = true;
    run_consumed = s.pops;
    loc = s.home;
    if (state == kNativeState) {
      end_run();
    }
  }
  return sol;
}

StackSolution brute_force_stack(const StackModelTrace& trace,
                                const CostModel& cost,
                                std::uint32_t window) {
  const std::size_t n = trace.steps.size();
  EM2_ASSERT(n <= 10 && window <= 8, "brute force limited to tiny inputs");

  StackSolution best;
  best.total_cost = kInfiniteCost;

  struct Tally {
    Cost cost = 0;
    std::uint64_t migrations = 0;
    std::uint64_t forced = 0;
    std::uint64_t bits = 0;
    std::vector<std::uint32_t> depths;
  };

  auto rec = [&](auto&& self, std::size_t k, std::int32_t state, CoreId loc,
                 Tally tally) -> void {
    if (tally.cost >= best.total_cost) {
      return;
    }
    if (k == n) {
      best.total_cost = tally.cost;
      best.migrations = tally.migrations;
      best.forced_returns = tally.forced;
      best.context_bits = tally.bits;
      best.chosen_depths = tally.depths;
      return;
    }
    const StackStep& s = trace.steps[k];
    const std::vector<Option> options = enumerate_options(
        cost, state, loc, trace.native, window, s.home, s.pops, s.pushes);
    const CoreId next_loc = s.home == trace.native ? kNoCore : s.home;
    for (const Option& opt : options) {
      Tally t = tally;
      t.cost += opt.cost;
      t.migrations += opt.migrations;
      t.forced += opt.forced_returns;
      t.bits += opt.context_bits;
      if (opt.depth_choice >= 0) {
        t.depths.push_back(static_cast<std::uint32_t>(opt.depth_choice));
      }
      self(self, k + 1, opt.to_state, next_loc, std::move(t));
    }
  };
  rec(rec, 0, kNativeState, kNoCore, Tally{});
  EM2_ASSERT(best.total_cost < kInfiniteCost, "no feasible stack schedule");
  return best;
}

std::unique_ptr<StackDepthPolicy> make_stack_policy(const std::string& spec) {
  if (spec.rfind("fixed:", 0) == 0) {
    const int d = std::atoi(spec.c_str() + 6);
    if (d >= 0) {
      return std::make_unique<FixedDepthPolicy>(
          static_cast<std::uint32_t>(d));
    }
    return nullptr;
  }
  if (spec == "min-need") {
    return std::make_unique<MinNeedPolicy>();
  }
  if (spec == "full-window") {
    return std::make_unique<FullWindowPolicy>();
  }
  if (spec == "adaptive") {
    return std::make_unique<AdaptiveDepthPolicy>();
  }
  return nullptr;
}

}  // namespace em2
