// Optimal per-migration stack depths for stack-machine EM2 (Section 4).
//
// "Since the migrated depth can be different for every access, determining
// the best per-migration depth requires a decision algorithm.  Indeed, to
// evaluate such schemes, we can use the same analytical model described
// for the EM2-RA case and a similar optimization formulation to compute
// the optimal stack depths (instead of the binary migrate-vs-RA decision,
// the algorithm considers the various stack depths) and compares them
// against a given depth-decision scheme."
//
// Model (documented in DESIGN.md; DP and brute force share one transition
// enumeration so they cannot diverge):
//   * A thread's stack memory lives at its native core; the stack cache
//     window holds at most `window` (Dmax) entries in registers.
//   * Under stack-EM2 every access executes at its home core (there is no
//     remote-access path), so the thread's location is forced; the only
//     decision is how many entries each migration carries.
//   * Each trace step (home, pops, pushes) consumes `pops` entries of
//     pre-existing stack and leaves `pushes` new ones.
//   * At the native core, spills/refills are local (free, like the paper's
//     local accesses).  At a remote core:
//       - needing more entries than carried  => underflow  => forced
//         migration back to native (then a fresh migration out),
//       - the window growing past `window`   => overflow   => forced
//         migration back to native after the access,
//     both exactly the "automatically migrate back" behaviour of Section 4.
//   * A migration from remote core c to remote core e may carry k of the
//     r live entries and flush the other r-k to native stack memory (one
//     network write message), or bounce through native explicitly.
//   * Migration cost follows the cost model with context pc + k*word bits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "noc/cost_model.hpp"
#include "util/types.hpp"

namespace em2 {

/// One stack-model trace step: a memory access at `home` whose surrounding
/// instruction window consumed `pops` pre-existing stack entries and left
/// `pushes` new ones.
struct StackStep {
  CoreId home = 0;
  std::uint32_t pops = 0;
  std::uint32_t pushes = 0;
};

/// A single thread's stack-model input.
struct StackModelTrace {
  std::vector<StackStep> steps;
  CoreId native = 0;
};

/// A depth schedule with its model cost.
struct StackSolution {
  Cost total_cost = 0;
  /// Depth carried by each *chosen* migration, in event order (forced
  /// returns to native are not choices and are excluded).
  std::vector<std::uint32_t> chosen_depths;
  std::uint64_t migrations = 0;      ///< all migrations incl. forced returns
  std::uint64_t forced_returns = 0;  ///< underflow/overflow-driven
  /// Total context bits that crossed the network (power proxy).
  std::uint64_t context_bits = 0;
};

/// A core-local depth-decision scheme: given the entries the next remote
/// run immediately needs (`need`) and the window size, choose the carried
/// depth.  `live` is the number of entries currently in the window when
/// migrating core-to-core (the carry ceiling); the result is clamped to
/// [need, min(live_ceiling, window)].
class StackDepthPolicy {
 public:
  virtual ~StackDepthPolicy() = default;
  virtual std::uint32_t choose(std::uint32_t need, std::uint32_t window) = 0;
  /// Observation hook: actual entries consumed by the finished remote run.
  virtual void observe_consumed(std::uint32_t consumed) { (void)consumed; }
  virtual std::string name() const = 0;
};

/// Always carry exactly `depth` entries (clamped).
class FixedDepthPolicy final : public StackDepthPolicy {
 public:
  explicit FixedDepthPolicy(std::uint32_t depth) : depth_(depth) {}
  std::uint32_t choose(std::uint32_t, std::uint32_t) override {
    return depth_;
  }
  std::string name() const override {
    return "fixed:" + std::to_string(depth_);
  }

 private:
  std::uint32_t depth_;
};

/// Carry only what the next access needs (minimum context, maximum
/// underflow risk).
class MinNeedPolicy final : public StackDepthPolicy {
 public:
  std::uint32_t choose(std::uint32_t need, std::uint32_t) override {
    return need;
  }
  std::string name() const override { return "min-need"; }
};

/// Always carry the full window (maximum context, minimum underflow).
class FullWindowPolicy final : public StackDepthPolicy {
 public:
  std::uint32_t choose(std::uint32_t, std::uint32_t window) override {
    return window;
  }
  std::string name() const override { return "full-window"; }
};

/// EWMA of observed remote-run consumption, plus a safety margin.
class AdaptiveDepthPolicy final : public StackDepthPolicy {
 public:
  explicit AdaptiveDepthPolicy(double alpha = 0.25, std::uint32_t margin = 1)
      : alpha_(alpha), margin_(margin) {}
  std::uint32_t choose(std::uint32_t need, std::uint32_t window) override;
  void observe_consumed(std::uint32_t consumed) override;
  std::string name() const override { return "adaptive"; }

 private:
  double alpha_;
  std::uint32_t margin_;
  double ewma_ = 2.0;
};

/// Exact optimum over the model's action space via dynamic programming.
/// Time O(N * window^2), space O(N * window).
StackSolution solve_optimal_stack(const StackModelTrace& trace,
                                  const CostModel& cost,
                                  std::uint32_t window);

/// Evaluates a concrete depth-decision scheme (O(N)); direct core-to-core
/// moves only (greedy schemes do not reposition through native).
StackSolution evaluate_stack_policy(const StackModelTrace& trace,
                                    const CostModel& cost,
                                    std::uint32_t window,
                                    StackDepthPolicy& policy);

/// Exhaustive search (tiny traces only; aborts above ~2^24 states).
StackSolution brute_force_stack(const StackModelTrace& trace,
                                const CostModel& cost, std::uint32_t window);

/// Factory: "fixed:<k>" | "min-need" | "full-window" | "adaptive".
std::unique_ptr<StackDepthPolicy> make_stack_policy(const std::string& spec);

}  // namespace em2
