// O(N) evaluation of a concrete migrate-vs-RA decision scheme under the
// paper's analytical model — "Computing the equivalent cost of a specific
// decision requires applying the decision procedure to each memory access
// in the trace, and so is O(N)."
//
// Same assumptions as the DP (single thread, no evictions, free local
// accesses), so the ratio policy_cost / optimal_cost is exactly the
// paper's figure of merit for hardware-implementable schemes.
#pragma once

#include "em2ra/policy.hpp"
#include "optimal/dp_migrate.hpp"

namespace em2 {

/// Walks the trace applying `policy` at every non-local access.  The
/// sealed overload specializes the walk on the policy's concrete type
/// (one visit per trace, no virtual call per access — the policy-zoo
/// sweeps evaluate millions of model accesses per policy); the
/// DecisionPolicy overload is the retained virtual path for custom
/// schemes and dispatch-equivalence tests.
MigrateRaSolution evaluate_policy_model(const ModelTrace& trace,
                                        const CostModel& cost,
                                        StandardPolicy& policy);
MigrateRaSolution evaluate_policy_model(const ModelTrace& trace,
                                        const CostModel& cost,
                                        DecisionPolicy& policy);

}  // namespace em2
